package configgen

import (
	"context"
	"testing"

	"nmsl/internal/consistency"
	"nmsl/internal/netsim"
	"nmsl/internal/snmp"
)

// startMixedFleet hosts half the model's agents on an in-memory network
// and half on real UDP loopback sockets — the deployment shape the
// ClientMux exists for (a mostly-simulated fleet with real agents mixed
// in, and the manager unwilling to open a socket per remote).
func startMixedFleet(t *testing.T, m *consistency.Model, admin, netName string) ([]Target, map[string]*snmp.Agent) {
	t.Helper()
	n, err := snmp.NewMemNet(netName, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	configs := Generate(m)
	ids := make([]string, 0, len(configs))
	for id := range configs {
		ids = append(ids, id)
	}
	var targets []Target
	agents := make(map[string]*snmp.Agent, len(ids))
	for i, id := range ids {
		store := snmp.NewStore()
		snmp.PopulateFromMIB(store, m.Spec.MIB, "mgmt.mib")
		agent := snmp.NewAgent(store, &snmp.Config{
			Communities:    map[string]*snmp.CommunityConfig{},
			AdminCommunity: admin,
		})
		var addr string
		if i%2 == 0 {
			if _, err := n.AddHost(id, agent); err != nil {
				t.Fatal(err)
			}
			addr = n.Addr(id)
		} else {
			ua, err := agent.ListenAndServe("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { agent.Close() })
			addr = ua.String()
		}
		agents[id] = agent
		targets = append(targets, Target{InstanceID: id, Addr: addr, AdminCommunity: admin})
	}
	return targets, agents
}

// TestRolloutOverClientMux: one rollout converges a fleet that is half
// mem:// and half UDP, every real-network dial sharing the mux's single
// socket via WithDialer. Runs twice over the same mux to exercise the
// route add/drop lifecycle (a closed client must free its route for the
// next rollout to the same address).
func TestRolloutOverClientMux(t *testing.T) {
	m, err := netsim.Model(netsim.Params{Domains: 8, SystemsPerDomain: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	targets, agents := startMixedFleet(t, m, "adm", "muxroll")

	mux, err := snmp.NewClientMux()
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()

	configs := Generate(m)
	for round := 0; round < 2; round++ {
		report, err := DistributeContext(context.Background(), m, targets,
			WithWorkers(4), WithDialer(mux.DialAny))
		if err != nil || !report.OK() {
			t.Fatalf("round %d: %v (%s)", round, err, report.Summary())
		}
		if report.Installed != len(targets) {
			t.Fatalf("round %d: %d installed of %d", round, report.Installed, len(targets))
		}
		for _, tgt := range targets {
			want := DesiredConfig(configs[tgt.InstanceID], tgt).Digest()
			if got := agents[tgt.InstanceID].ConfigSnapshot().Digest(); got != want {
				t.Errorf("round %d: %s digest %s, want %s", round, tgt.InstanceID, got, want)
			}
		}
	}
}

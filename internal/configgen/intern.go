package configgen

import "nmsl/internal/snmp"

// InternPool deduplicates structurally identical agent configurations by
// digest. At §1 scale a fleet generates one configuration per instance,
// but most instances share a handful of process shapes — interning folds
// 100k config payloads down to the distinct few, which is what keeps a
// 100k-agent fleet's reconciler targets and desired-state tables in
// memory. The returned pointer must be treated as immutable (clone
// before mutating, exactly as rollouts already do via DesiredConfig).
type InternPool map[string]*snmp.Config

// Intern returns the pooled instance structurally equal to cfg, adding
// cfg to the pool on first sight. A nil cfg interns to nil.
func (p InternPool) Intern(cfg *snmp.Config) *snmp.Config {
	if cfg == nil {
		return nil
	}
	d := cfg.Digest()
	if c, ok := p[d]; ok {
		return c
	}
	p[d] = cfg
	return cfg
}

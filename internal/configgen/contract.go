package configgen

import (
	"sort"
	"time"

	"nmsl/internal/changespec"
	"nmsl/internal/consistency"
	"nmsl/internal/obs"
)

// Change-contract pre-gate: a rollout plan is verified against its
// declared blast radius before any wave ships. Where WithMaxFailureRate
// and WithGate judge a wave after it has touched the network, a change
// contract judges the edit itself — a plan that exceeds it is refused
// with every target canceled and zero datagrams sent.

// MetricRolloutContractFails counts rollouts refused by the
// change-contract pre-gate.
const MetricRolloutContractFails = "nmsl_rollout_contract_failures_total"

// ContractError is the changespec violation aggregate, re-exported so
// rollout callers can match it with errors.As next to *GateError.
type ContractError = changespec.ContractError

// changeContract is one armed pre-gate: the contract, the pre-edit
// model, and the edit's delta.
type changeContract struct {
	contract *changespec.Contract
	old      *consistency.Model
	delta    *consistency.ModelDelta
}

// WithChangeContract arms the change-contract pre-gate: before any wave
// ships, the edit from old to the rollout's model (described by delta,
// typically from consistency.DeltaFromSpecs) is verified against c. On
// violation DistributeContext returns a *ContractError and a report in
// which every target is canceled — the plan never touches the network.
// Repeating the option stacks contracts; all are evaluated, the first
// violated one refuses the rollout.
//
// A nil delta (or one marked Full/MIBChanged) is treated as a
// whole-model edit, which any scoped contract refuses — absent an edit
// description, the pre-gate fails closed rather than open.
func WithChangeContract(c *changespec.Contract, old *consistency.Model, delta *consistency.ModelDelta) RolloutOption {
	return func(o *rolloutOptions) {
		o.contracts = append(o.contracts, changeContract{contract: c, old: old, delta: delta})
	}
}

// evalContracts checks every armed contract against m (the post-edit
// model the rollout would install). It returns nil when all pass.
func evalContracts(m *consistency.Model, opt *rolloutOptions) *ContractError {
	for _, cc := range opt.contracts {
		r := changespec.NewChecker(cc.old, m).Check(cc.delta, cc.contract)
		if err := r.Err(); err != nil {
			return err.(*ContractError)
		}
	}
	return nil
}

// contractRefusedReport builds the all-canceled report for a plan the
// pre-gate refused: every target carries the contract error, nothing
// was attempted.
func contractRefusedReport(targets []Target, cause *ContractError, opt *rolloutOptions, start time.Time) *RolloutReport {
	report := &RolloutReport{Results: make([]TargetResult, len(targets))}
	for i, tgt := range targets {
		report.Results[i] = TargetResult{Target: tgt, Status: StatusCanceled, Err: cause}
	}
	sort.Slice(report.Results, func(i, j int) bool {
		return report.Results[i].Target.InstanceID < report.Results[j].Target.InstanceID
	})
	report.Canceled = len(targets)
	report.Duration = time.Since(start)

	reg := opt.metrics
	if reg == nil {
		reg = obs.Default
	}
	if reg.Enabled() {
		run := obs.NewRegistry()
		run.Counter(MetricRolloutRuns).Inc()
		run.Counter(MetricRolloutContractFails).Inc()
		run.Counter(obs.L(MetricRolloutTargets, "status", StatusCanceled.String())).Add(int64(len(targets)))
		reg.Merge(run)
		report.Metrics = run.Snapshot()
	}
	return report
}

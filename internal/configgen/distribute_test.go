package configgen

import (
	"testing"
	"time"

	"nmsl/internal/consistency"
	"nmsl/internal/netsim"
	"nmsl/internal/snmp"
)

// TestDistribute spins up one live agent per agent instance of a
// synthetic internet, fans configuration out to all of them
// concurrently, and verifies every agent ends up enforcing its policy.
func TestDistribute(t *testing.T) {
	m, err := netsim.Model(netsim.Params{Domains: 5, SystemsPerDomain: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	configs := Generate(m)
	if len(configs) != 10 {
		t.Fatalf("configs: %d", len(configs))
	}

	var targets []Target
	agents := map[string]*snmp.Agent{}
	for id := range configs {
		store := snmp.NewStore()
		snmp.PopulateFromMIB(store, m.Spec.MIB, "mgmt.mib")
		agent := snmp.NewAgent(store, &snmp.Config{
			Communities:    map[string]*snmp.CommunityConfig{},
			AdminCommunity: "adm",
		})
		addr, err := agent.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { agent.Close() })
		agents[id] = agent
		targets = append(targets, Target{InstanceID: id, Addr: addr.String(), AdminCommunity: "adm"})
	}

	results := Distribute(m, targets, DistributeOptions{Workers: 4})
	if len(results) != len(targets) {
		t.Fatalf("results: %d", len(results))
	}
	if failed := Failed(results); len(failed) != 0 {
		t.Fatalf("failures: %+v", failed)
	}
	for id, agent := range agents {
		cfg := agent.ConfigSnapshot()
		if len(cfg.Communities) == 0 {
			t.Errorf("agent %s has no communities after distribution", id)
		}
		if cfg.Communities["public"] == nil {
			t.Errorf("agent %s missing public community", id)
		}
		if got := cfg.Communities["public"].MinInterval; got != 5*time.Minute {
			t.Errorf("agent %s min interval %v", id, got)
		}
	}
}

func TestDistributeReportsMissingInstance(t *testing.T) {
	m, err := netsim.Model(netsim.Params{Domains: 1, SystemsPerDomain: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	results := Distribute(m, []Target{{InstanceID: "ghost@nowhere#0", Addr: "127.0.0.1:1", AdminCommunity: "adm"}}, DistributeOptions{})
	if len(results) != 1 || results[0].Err == nil {
		t.Fatalf("results: %+v", results)
	}
}

func TestDistributeUnreachableTarget(t *testing.T) {
	m, err := netsim.Model(netsim.Params{Domains: 1, SystemsPerDomain: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var id string
	for k := range Generate(m) {
		id = k
	}
	// port 1 on loopback: nothing listens; the install must fail after
	// retries rather than hang.
	results := Distribute(m, []Target{{InstanceID: id, Addr: "127.0.0.1:1", AdminCommunity: "adm"}}, DistributeOptions{})
	if len(Failed(results)) != 1 {
		t.Fatalf("results: %+v", results)
	}
	_ = consistency.Check(m)
}

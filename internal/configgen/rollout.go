// Fault-tolerant rollout: the distributed installation phase of section 5
// made robust against the network it manages. Shipping configuration to
// 100k+ elements cannot assume a lossless transport, so DistributeContext
// treats each install as a fallible distributed operation — bounded
// workers, per-target retries with jittered exponential backoff, optional
// per-target deadlines, streamed results, and a report that distinguishes
// installed, failed, skipped, canceled and rolled-back targets instead of
// collapsing them into one error.
//
// On top of the retry layer the rollout is transactional: WithJournal
// records the plan, every pre-image and every outcome into a crash-safe
// write-ahead journal (journal.go) so a killed process resumes
// idempotently with ResumeRollout and an aborted run reverts with
// Rollback; WithStages splits the targets into canary waves whose health
// gates (WithMaxFailureRate, WithGate) abort the rollout and roll the
// offending wave back to its pre-images automatically.

package configgen

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"time"

	"nmsl/internal/consistency"
	"nmsl/internal/obs"
	"nmsl/internal/snmp"
)

// Metric names recorded by DistributeContext. Durations are
// nanoseconds; MetricRolloutTargets and MetricRolloutTargetDuration
// carry a status label (installed, failed, skipped, canceled,
// rolled-back).
const (
	MetricRolloutRuns           = "nmsl_rollout_runs_total"
	MetricRolloutTargets        = "nmsl_rollout_targets_total"
	MetricRolloutAttempts       = "nmsl_rollout_attempts_total"
	MetricRolloutRetries        = "nmsl_rollout_retries_total"
	MetricRolloutBackoffSleep   = "nmsl_rollout_backoff_sleep_ns_total"
	MetricRolloutDuration       = "nmsl_rollout_duration_ns"
	MetricRolloutTargetDuration = "nmsl_rollout_target_duration_ns"
	MetricRolloutGateFails      = "nmsl_rollout_gate_failures_total"
	MetricRolloutResumed        = "nmsl_rollout_resumed_total"
)

// maxRolloutBackoff clamps an overflowed exponential delay when no
// explicit cap is configured: without it, base << k wraps negative at
// large k and the delay collapses to an immediate, tight-looping retry.
const maxRolloutBackoff = time.Hour

// RolloutStatus classifies one target's outcome.
type RolloutStatus int

const (
	// StatusInstalled means the configuration was acknowledged by the
	// agent (or, on resume, the journal or the agent's live digest showed
	// it already in place).
	StatusInstalled RolloutStatus = iota
	// StatusFailed means every attempt errored (or the per-target
	// deadline expired).
	StatusFailed
	// StatusSkipped means no configuration was generated for the
	// target's instance, so nothing was sent.
	StatusSkipped
	// StatusCanceled means the rollout was canceled (context, fail-fast
	// or an earlier wave's failed health gate) before the target
	// succeeded.
	StatusCanceled
	// StatusRolledBack means the target had been installed but was
	// restored to its pre-image after its wave failed a health gate (or
	// by an explicit Rollback of the journal).
	StatusRolledBack
)

// String returns the lowercase status name.
func (s RolloutStatus) String() string {
	switch s {
	case StatusInstalled:
		return "installed"
	case StatusFailed:
		return "failed"
	case StatusSkipped:
		return "skipped"
	case StatusCanceled:
		return "canceled"
	case StatusRolledBack:
		return "rolled-back"
	}
	return fmt.Sprintf("RolloutStatus(%d)", int(s))
}

// parseRolloutStatus is the inverse of String, used by journal replay.
func parseRolloutStatus(s string) (RolloutStatus, error) {
	for _, st := range []RolloutStatus{StatusInstalled, StatusFailed, StatusSkipped, StatusCanceled, StatusRolledBack} {
		if st.String() == s {
			return st, nil
		}
	}
	return 0, fmt.Errorf("unknown rollout status %q", s)
}

// TargetResult reports one target's rollout outcome.
type TargetResult struct {
	Target   Target
	Status   RolloutStatus
	Attempts int
	// Err is the last error observed (nil when installed).
	Err      error
	Duration time.Duration
	// Digest identifies the configuration now on the agent as far as the
	// rollout knows: the installed config's digest, or the restored
	// pre-image's after a rollback. Empty when nothing was applied.
	Digest string
	// Resumed marks a target satisfied without an install: the journal
	// (or the agent's live digest) showed the desired configuration
	// already in place.
	Resumed bool
}

// WaveResult summarizes one canary wave as it completes — the rollout's
// partial-progress unit. A mega-fleet operator watching a 10k-target
// rollout needs to know where it stands wave by wave, not only after
// the last datagram.
type WaveResult struct {
	// Wave is the zero-based wave index; Start/End its half-open span in
	// the (pre-sort) target order.
	Wave       int
	Start, End int
	// Counts by outcome within the wave, taken after the wave's gate ran
	// (so a reverted wave shows its RolledBack count, not Installed).
	Installed, Failed, Skipped, Canceled, RolledBack int
	// Resumed counts targets satisfied without an install.
	Resumed int
	// Attempts is the total install attempts the wave consumed.
	Attempts int
	// GateErr is non-nil when the wave failed its health gate.
	GateErr error
	// Duration is the wall-clock time of the wave including its gate and
	// any rollback.
	Duration time.Duration
}

// RolloutReport aggregates a rollout.
type RolloutReport struct {
	// Results holds every target's outcome, sorted by instance ID.
	Results []TargetResult
	// Waves holds per-wave summaries in wave order (one entry even for
	// an unstaged rollout; waves canceled before starting included).
	Waves []WaveResult
	// Installed, Failed, Skipped, Canceled and RolledBack count targets
	// by status.
	Installed, Failed, Skipped, Canceled, RolledBack int
	// Attempts is the total number of install attempts across targets.
	Attempts int
	// Duration is the wall-clock time of the whole rollout.
	Duration time.Duration
	// Metrics is this rollout's observability snapshot — the
	// MetricRollout* names above — embedded so tests and callers can
	// assert on attempt, retry and latency counts without scraping an
	// endpoint. Nil when metrics are disabled (WithMetrics(obs.Disabled)).
	Metrics obs.Snapshot
}

// OK reports whether every target was installed: a reverted wave
// (rolled-back targets) is NOT success, so callers cannot mistake an
// auto-rollback for a converged rollout.
func (r *RolloutReport) OK() bool {
	return r.Failed == 0 && r.Skipped == 0 && r.Canceled == 0 && r.RolledBack == 0
}

// Summary renders a one-line account of the rollout.
func (r *RolloutReport) Summary() string {
	return fmt.Sprintf("rollout: %d/%d installed, %d failed, %d skipped, %d canceled, %d rolled-back (%d attempts in %v)",
		r.Installed, len(r.Results), r.Failed, r.Skipped, r.Canceled, r.RolledBack, r.Attempts, r.Duration.Round(time.Millisecond))
}

// GateError is returned by DistributeContext when a canary health gate
// failed: the offending wave was rolled back to its pre-images and the
// remaining waves were never attempted.
type GateError struct {
	// Wave is the zero-based index of the wave that failed its gate.
	Wave int
	// Err is what the gate observed.
	Err error
}

func (e *GateError) Error() string {
	return fmt.Sprintf("configgen: wave %d failed its health gate: %v (wave rolled back, rollout aborted)", e.Wave, e.Err)
}

// Unwrap exposes the gate's observation to errors.Is/As.
func (e *GateError) Unwrap() error { return e.Err }

// rolloutRunMetrics carries the run-scoped instruments the attempt
// loop updates; the zero value (on=false) makes every update a no-op.
type rolloutRunMetrics struct {
	on    bool
	sleep *obs.Counter
}

// rolloutOptions is the resolved option set.
type rolloutOptions struct {
	workers          int
	retries          int
	backoffBase      time.Duration
	backoffMax       time.Duration
	perTargetTimeout time.Duration
	attemptTimeout   time.Duration
	onResult         func(TargetResult)
	onWave           func(WaveResult)
	failFast         bool
	metrics          *obs.Registry
	om               rolloutRunMetrics

	// Transactional layer.
	contracts      []changeContract
	stages         []float64
	maxFailureRate float64 // negative = gate disarmed
	gate           func(context.Context, []TargetResult) error
	journalPath    string
	journalNoSync  bool
	journal        *Journal          // pre-opened on resume/rollback
	resumed        map[string]string // targetKey -> digest installed per the journal

	// Jitter source; nil selects the global generator.
	jitterMu  sync.Mutex
	jitterRng *rand.Rand

	// Dial function; nil selects snmp.Dial.
	dial func(addr, community string) (*snmp.Client, error)
}

// RolloutOption tunes DistributeContext, mirroring the checker's
// functional options.
type RolloutOption func(*rolloutOptions)

// WithWorkers bounds concurrent installations; n <= 0 selects the
// default (8).
func WithWorkers(n int) RolloutOption {
	return func(o *rolloutOptions) { o.workers = n }
}

// WithRetries sets how many times a failed install is retried per target
// (n retries = n+1 attempts). Negative means zero.
func WithRetries(n int) RolloutOption {
	return func(o *rolloutOptions) {
		if n < 0 {
			n = 0
		}
		o.retries = n
	}
}

// WithBackoff sets the delay before the k-th retry of a target:
// base·2^k, jittered ±50%, capped at max. A zero base retries
// immediately.
func WithBackoff(base, max time.Duration) RolloutOption {
	return func(o *rolloutOptions) { o.backoffBase, o.backoffMax = base, max }
}

// WithPerTargetTimeout bounds the total time spent on one target across
// all its attempts and backoffs; zero means unbounded (the context still
// applies).
func WithPerTargetTimeout(d time.Duration) RolloutOption {
	return func(o *rolloutOptions) { o.perTargetTimeout = d }
}

// WithAttemptTimeout bounds each individual install attempt's wait for
// the agent's acknowledgment; zero selects the client default (500ms).
func WithAttemptTimeout(d time.Duration) RolloutOption {
	return func(o *rolloutOptions) { o.attemptTimeout = d }
}

// WithOnResult streams each target's result as it completes (from worker
// goroutines, serialized — fn need not lock). The callback may cancel
// the rollout's context to stop early.
func WithOnResult(fn func(TargetResult)) RolloutOption {
	return func(o *rolloutOptions) { o.onResult = fn }
}

// WithOnWave streams each wave's summary as the wave completes (after
// its health gate and any rollback; serialized with onResult). Waves
// canceled before starting are reported too, so the stream always
// accounts for every target.
func WithOnWave(fn func(WaveResult)) RolloutOption {
	return func(o *rolloutOptions) { o.onWave = fn }
}

// WithFailFast cancels the remaining targets after the first failure
// (skips count as failures for this purpose; cancellations do not).
func WithFailFast() RolloutOption {
	return func(o *rolloutOptions) { o.failFast = true }
}

// WithMetrics selects where the rollout's observability counters land:
// nil (the default) records into obs.Default, obs.Disabled turns
// instrumentation off entirely. The rollout's own numbers are also
// embedded in RolloutReport.Metrics unless disabled.
func WithMetrics(reg *obs.Registry) RolloutOption {
	return func(o *rolloutOptions) { o.metrics = reg }
}

// WithJitterSeed makes the rollout's backoff jitter deterministic: every
// jitter draw comes from one source seeded with seed instead of the
// global generator, so tests can assert exact sleep accounting instead
// of ranges. Workers share the source under a lock; with one worker the
// draw sequence is fully reproducible.
func WithJitterSeed(seed int64) RolloutOption {
	return func(o *rolloutOptions) { o.jitterRng = rand.New(rand.NewSource(seed)) }
}

// WithStages splits the rollout into canary waves: each fraction is the
// cumulative share of targets installed by the end of that wave, and a
// final implicit wave covers the remainder. WithStages(0.1, 0.5) rolls
// to 10%, gates, rolls to 50%, gates, then finishes. Fractions must be
// strictly increasing in (0, 1]. After each wave the health gate runs
// (WithMaxFailureRate, WithGate); a failed gate rolls the wave back to
// its pre-images and the remaining waves are never attempted.
func WithStages(fractions ...float64) RolloutOption {
	return func(o *rolloutOptions) { o.stages = fractions }
}

// WithMaxFailureRate arms the per-wave health gate: when more than rate
// (0 <= rate < 1) of a wave's targets fail or skip, the rollout aborts,
// the wave's installed targets are rolled back to their pre-images, and
// the remaining waves are never attempted. Zero tolerates no failures.
func WithMaxFailureRate(rate float64) RolloutOption {
	return func(o *rolloutOptions) {
		if rate < 0 {
			rate = 0
		}
		o.maxFailureRate = rate
	}
}

// WithGate installs a health-gate callback run after each wave with the
// wave's results (and after the final wave). A non-nil error fails the
// gate: the wave's installed targets are rolled back to their pre-images
// and DistributeContext returns a *GateError. audit.Gate adapts the
// adherence auditor into this shape.
func WithGate(fn func(ctx context.Context, wave []TargetResult) error) RolloutOption {
	return func(o *rolloutOptions) { o.gate = fn }
}

// WithJournal records the rollout into a crash-safe write-ahead journal
// at path: the plan (targets and their config digests) up front, each
// target's pre-image before it is touched, and each outcome as it lands,
// every line fsync'd before the rollout proceeds. A rollout killed
// mid-flight restarts idempotently with ResumeRollout; an aborted one
// reverts with Rollback. The file must not already exist (an existing
// journal is evidence of an unfinished run — resume or remove it).
func WithJournal(path string) RolloutOption {
	return func(o *rolloutOptions) { o.journalPath = path }
}

// WithJournalNoSync drops the journal's per-record fsync. The journal
// still hits the OS page cache in order, so it survives the process
// being killed; only a machine crash can lose the tail. A 10k-target
// rollout writes ~30k journal records — at one fsync each that is the
// rollout's dominant cost, and mega-fleet runs trade the power-loss
// window for it deliberately.
func WithJournalNoSync() RolloutOption {
	return func(o *rolloutOptions) { o.journalNoSync = true }
}

// WithDialer replaces snmp.Dial as the way attempt loops reach their
// targets. A mixed fleet passes (*snmp.ClientMux).DialAny here so every
// real-network target shares one UDP socket while mem:// targets keep
// the in-memory path; tests pass fault-wrapped dialers. The function
// must be safe for concurrent use by the rollout's workers.
func WithDialer(fn func(addr, community string) (*snmp.Client, error)) RolloutOption {
	return func(o *rolloutOptions) { o.dial = fn }
}

// gated reports whether a health gate is armed.
func (o *rolloutOptions) gated() bool {
	return o.gate != nil || o.maxFailureRate >= 0
}

// capturePre reports whether pre-images must be captured before
// installing: always when journaling (resume and Rollback need them) and
// whenever a gate could demand a rollback.
func (o *rolloutOptions) capturePre() bool {
	return o.journal != nil || o.journalPath != "" || o.gated()
}

// validate rejects malformed stage fractions and failure rates.
func (o *rolloutOptions) validate() error {
	last := 0.0
	for _, f := range o.stages {
		if f <= 0 || f > 1 || f <= last {
			return fmt.Errorf("configgen: stage fractions must be strictly increasing in (0, 1], got %v", o.stages)
		}
		last = f
	}
	if o.maxFailureRate >= 1 {
		return fmt.Errorf("configgen: max failure rate must be in [0, 1), got %g", o.maxFailureRate)
	}
	return nil
}

// applyRolloutOptions resolves the defaults and the caller's options.
func applyRolloutOptions(opts []RolloutOption) (*rolloutOptions, error) {
	opt := &rolloutOptions{
		workers:        8,
		retries:        2,
		backoffBase:    50 * time.Millisecond,
		backoffMax:     2 * time.Second,
		maxFailureRate: -1,
	}
	for _, fn := range opts {
		fn(opt)
	}
	if opt.workers <= 0 {
		opt.workers = 8
	}
	return opt, opt.validate()
}

// jitterInt63n draws from the seeded source when one is installed
// (serialized — workers share it), the global generator otherwise.
func (o *rolloutOptions) jitterInt63n(n int64) int64 {
	if o.jitterRng == nil {
		return rand.Int63n(n)
	}
	o.jitterMu.Lock()
	defer o.jitterMu.Unlock()
	return o.jitterRng.Int63n(n)
}

// rolloutBackoff computes the jittered exponential delay before retry k.
func (o *rolloutOptions) rolloutBackoff(k int) time.Duration {
	if o.backoffBase <= 0 {
		return 0
	}
	d := o.backoffBase << uint(k)
	// Detect shift overflow regardless of whether a cap was configured
	// (shifting back must recover the base exactly); the old guard only
	// clamped under a positive backoffMax, so an uncapped rollout
	// retried with no delay at all once k grew past 62.
	if d <= 0 || d>>uint(k) != o.backoffBase {
		d = maxRolloutBackoff
	}
	if o.backoffMax > 0 && d > o.backoffMax {
		d = o.backoffMax
	}
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	return time.Duration(half + o.jitterInt63n(2*half))
}

// targetKey identifies a target within a rollout and its journal.
func targetKey(instanceID, addr string) string { return instanceID + "|" + addr }

// DesiredConfig returns the exact configuration a rollout installs at
// tgt: the instance's generated config with the target's admin community
// applied. Digest comparisons against a live agent must use this form,
// not the raw generated config.
func DesiredConfig(cfg *snmp.Config, tgt Target) *snmp.Config {
	if cfg == nil {
		return nil
	}
	cp := cfg.Clone()
	cp.AdminCommunity = tgt.AdminCommunity
	return cp
}

// waveSpan is one wave's half-open [start, end) slice of the targets.
type waveSpan struct{ start, end int }

// splitWaves cuts n targets into canary waves at the cumulative
// fractions (empty fractions mean one wave of everything).
func splitWaves(n int, fracs []float64) []waveSpan {
	if n == 0 {
		return nil
	}
	var waves []waveSpan
	prev := 0
	for _, f := range fracs {
		end := int(math.Ceil(f * float64(n)))
		if end > n {
			end = n
		}
		if end <= prev {
			continue // a fraction too small to add a target at this n
		}
		waves = append(waves, waveSpan{prev, end})
		prev = end
	}
	if prev < n {
		waves = append(waves, waveSpan{prev, n})
	}
	return waves
}

// preStore holds the pre-images captured this run, for gate-triggered
// rollbacks (the journal holds them durably for explicit Rollback).
type preStore struct {
	mu sync.Mutex
	m  map[string]*snmp.Config
}

func (p *preStore) put(key string, cfg *snmp.Config) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.m[key]; !ok { // first capture is the true pre-image
		p.m[key] = cfg
	}
}

func (p *preStore) get(key string) *snmp.Config {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.m[key]
}

// DistributeContext derives every agent's configuration from the model
// and installs each one at its target over a bounded worker pool,
// retrying failures with backoff. With stages or gates configured the
// rollout is transactional: waves install in order, each wave's health
// gate may abort the run and roll the wave back to its pre-images (the
// error is then a *GateError). It returns the report along with the
// context's error when the rollout was cut short; the report is complete
// either way (unfinished targets appear as canceled).
func DistributeContext(ctx context.Context, m *consistency.Model, targets []Target, opts ...RolloutOption) (*RolloutReport, error) {
	opt, err := applyRolloutOptions(opts)
	if err != nil {
		return nil, err
	}
	// Change-contract pre-gate (WithChangeContract): a plan exceeding
	// its declared blast radius is refused here, before the journal is
	// created and before any datagram leaves.
	if len(opt.contracts) > 0 {
		start := time.Now()
		if cause := evalContracts(m, opt); cause != nil {
			return contractRefusedReport(targets, cause, opt, start), cause
		}
	}
	return rolloutRun(ctx, Generate(m), targets, opt)
}

// rolloutRun executes the wave/gate state machine over pre-generated
// configs. ResumeRollout enters here with a re-opened journal and the
// journal's plan as targets.
func rolloutRun(ctx context.Context, configs map[string]*snmp.Config, targets []Target, opt *rolloutOptions) (*RolloutReport, error) {
	// Journal creation (fresh runs): the plan record must be durable
	// before the first datagram leaves, or a crash forgets the targets.
	if opt.journalPath != "" && opt.journal == nil {
		plan := make([]PlannedTarget, len(targets))
		for i, tgt := range targets {
			plan[i] = PlannedTarget{
				Instance: tgt.InstanceID,
				Addr:     tgt.Addr,
				Admin:    tgt.AdminCommunity,
				Digest:   DesiredConfig(configs[tgt.InstanceID], tgt).Digest(),
			}
		}
		j, err := CreateJournal(opt.journalPath, plan)
		if err != nil {
			return nil, err
		}
		opt.journal = j
	}
	// The plan record above is always fsync'd (it must survive anything);
	// per-record syncing of the rest is the caller's trade.
	opt.journal.setNoSync(opt.journalNoSync)
	defer opt.journal.Close()

	// Observability: run-scoped registry merged into the shared one at
	// the end, so overlapping rollouts keep exact per-run snapshots.
	reg := opt.metrics
	if reg == nil {
		reg = obs.Default
	}
	mon := reg.Enabled()
	var run *obs.Registry
	if mon {
		run = obs.NewRegistry()
		opt.om = rolloutRunMetrics{on: true, sleep: run.Counter(MetricRolloutBackoffSleep)}
	}
	var sp obs.Span
	if obs.TracingEnabled() {
		sp = obs.StartSpan("rollout",
			obs.Label{Key: "targets", Value: strconv.Itoa(len(targets))},
			obs.Label{Key: "workers", Value: strconv.Itoa(opt.workers)})
	}

	start := time.Now()

	// rctx carries both external cancellation and fail-fast.
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	report := &RolloutReport{Results: make([]TargetResult, len(targets))}
	pre := &preStore{m: map[string]*snmp.Config{}}
	var mu sync.Mutex // serializes onResult, failFast and journal errors
	var journalErr error
	record := func(i int, res TargetResult) {
		mu.Lock()
		defer mu.Unlock()
		report.Results[i] = res
		if err := opt.journal.recordResult(res); err != nil && journalErr == nil {
			journalErr = err
			cancel() // a journal that stopped persisting voids the crash-safety contract
		}
		if opt.onResult != nil {
			opt.onResult(res)
		}
		if opt.failFast && (res.Status == StatusFailed || res.Status == StatusSkipped) {
			cancel()
		}
	}

	waves := splitWaves(len(targets), opt.stages)
	var gateErr *GateError
	for wi, w := range waves {
		waveStart := time.Now()
		if gateErr != nil || rctx.Err() != nil {
			// Aborted before this wave: mark its targets canceled without
			// touching the network.
			for i := w.start; i < w.end; i++ {
				err := rctx.Err()
				if err == nil {
					err = gateErr
				}
				record(i, TargetResult{Target: targets[i], Status: StatusCanceled, Err: err})
			}
			finishWave(report, wi, w, waveStart, nil, opt, &mu)
			continue
		}

		// Fixed worker pool pulling target indices: a 10k-target wave must
		// not spawn 10k goroutines just to have a semaphore park most of
		// them.
		runPool(w, opt.workers, func(i int) {
			record(i, installTarget(rctx, configs[targets[i].InstanceID], targets[i], opt, pre))
		})

		if rctx.Err() != nil || !opt.gated() {
			finishWave(report, wi, w, waveStart, nil, opt, &mu)
			continue
		}
		wave := append([]TargetResult(nil), report.Results[w.start:w.end]...)
		gerr := evalGate(rctx, wave, opt)
		if gerr == nil {
			finishWave(report, wi, w, waveStart, nil, opt, &mu)
			continue
		}
		gateErr = &GateError{Wave: wi, Err: gerr}
		if mon {
			run.Counter(MetricRolloutGateFails).Inc()
		}
		mu.Lock()
		if err := opt.journal.recordGate(wi, gerr); err != nil && journalErr == nil {
			journalErr = err
		}
		mu.Unlock()
		rollbackWave(rctx, w, targets, report, pre, opt, record)
		finishWave(report, wi, w, waveStart, gerr, opt, &mu)
	}

	sort.Slice(report.Results, func(i, j int) bool {
		return report.Results[i].Target.InstanceID < report.Results[j].Target.InstanceID
	})
	retries := 0
	resumed := 0
	for _, r := range report.Results {
		report.Attempts += r.Attempts
		if r.Attempts > 1 {
			retries += r.Attempts - 1
		}
		if r.Resumed {
			resumed++
		}
		switch r.Status {
		case StatusInstalled:
			report.Installed++
		case StatusFailed:
			report.Failed++
		case StatusSkipped:
			report.Skipped++
		case StatusCanceled:
			report.Canceled++
		case StatusRolledBack:
			report.RolledBack++
		}
		if mon {
			run.Histogram(obs.L(MetricRolloutTargetDuration, "status", r.Status.String())).Observe(int64(r.Duration))
		}
	}
	report.Duration = time.Since(start)
	if mon {
		run.Counter(MetricRolloutRuns).Inc()
		run.Counter(MetricRolloutAttempts).Add(int64(report.Attempts))
		run.Counter(MetricRolloutRetries).Add(int64(retries))
		run.Counter(MetricRolloutResumed).Add(int64(resumed))
		run.Histogram(MetricRolloutDuration).Observe(int64(report.Duration))
		for s, n := range map[RolloutStatus]int{
			StatusInstalled:  report.Installed,
			StatusFailed:     report.Failed,
			StatusSkipped:    report.Skipped,
			StatusCanceled:   report.Canceled,
			StatusRolledBack: report.RolledBack,
		} {
			// Counter() first so zero-count statuses still appear in the
			// snapshot with an explicit 0.
			run.Counter(obs.L(MetricRolloutTargets, "status", s.String())).Add(int64(n))
		}
		reg.Merge(run)
		report.Metrics = run.Snapshot()
	}
	if sp.Active() {
		sp.Label("installed", strconv.Itoa(report.Installed))
		sp.Label("failed", strconv.Itoa(report.Failed))
		sp.Label("rolled_back", strconv.Itoa(report.RolledBack))
	}
	sp.End()
	switch {
	case journalErr != nil:
		return report, fmt.Errorf("configgen: journal: %w", journalErr)
	case gateErr != nil:
		return report, gateErr
	default:
		return report, ctx.Err()
	}
}

// runPool runs fn(i) for every index in the wave span over a fixed pool
// of at most workers goroutines.
func runPool(w waveSpan, workers int, fn func(i int)) {
	n := w.end - w.start
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := w.start; i < w.end; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// finishWave summarizes a completed (or cancel-skipped) wave from its
// span of results, appends it to the report and streams it to the
// caller. Must run before the final sort reorders Results.
func finishWave(report *RolloutReport, wi int, w waveSpan, start time.Time, gateErr error, opt *rolloutOptions, mu *sync.Mutex) {
	wr := WaveResult{Wave: wi, Start: w.start, End: w.end, GateErr: gateErr, Duration: time.Since(start)}
	for _, r := range report.Results[w.start:w.end] {
		wr.Attempts += r.Attempts
		if r.Resumed {
			wr.Resumed++
		}
		switch r.Status {
		case StatusInstalled:
			wr.Installed++
		case StatusFailed:
			wr.Failed++
		case StatusSkipped:
			wr.Skipped++
		case StatusCanceled:
			wr.Canceled++
		case StatusRolledBack:
			wr.RolledBack++
		}
	}
	report.Waves = append(report.Waves, wr)
	if opt.onWave != nil {
		mu.Lock()
		opt.onWave(wr)
		mu.Unlock()
	}
}

// evalGate runs the wave's health checks: the failure-rate threshold
// first, then the caller's gate callback.
func evalGate(ctx context.Context, wave []TargetResult, opt *rolloutOptions) error {
	if opt.maxFailureRate >= 0 {
		failed := 0
		for _, r := range wave {
			if r.Status == StatusFailed || r.Status == StatusSkipped {
				failed++
			}
		}
		if rate := float64(failed) / float64(len(wave)); rate > opt.maxFailureRate {
			return fmt.Errorf("failure rate %.2f exceeds %.2f (%d of %d targets)", rate, opt.maxFailureRate, failed, len(wave))
		}
	}
	if opt.gate != nil {
		return opt.gate(ctx, wave)
	}
	return nil
}

// rollbackWave restores every installed target of the wave to its
// captured pre-image, rewriting the wave's results in place.
func rollbackWave(rctx context.Context, w waveSpan, targets []Target, report *RolloutReport, pre *preStore, opt *rolloutOptions, record func(int, TargetResult)) {
	runPool(w, opt.workers, func(i int) {
		if report.Results[i].Status != StatusInstalled {
			return
		}
		tgt := targets[i]
		record(i, restoreTarget(rctx, tgt, pre.get(targetKey(tgt.InstanceID, tgt.Addr)), opt))
	})
}

// restoreTarget re-installs a captured pre-image at tgt, reporting
// StatusRolledBack on success.
func restoreTarget(rctx context.Context, tgt Target, prev *snmp.Config, opt *rolloutOptions) TargetResult {
	start := time.Now()
	res := TargetResult{Target: tgt}
	var sp obs.Span
	if obs.TracingEnabled() {
		sp = obs.StartSpan("rollout.rollback", obs.Label{Key: "instance", Value: tgt.InstanceID})
	}
	defer func() {
		res.Duration = time.Since(start)
		sp.Label("status", res.Status.String())
		sp.End()
	}()
	if prev == nil {
		res.Status = StatusFailed
		res.Err = fmt.Errorf("configgen: no pre-image captured for %s, cannot roll back", tgt.InstanceID)
		return res
	}
	tctx := rctx
	if opt.perTargetTimeout > 0 {
		var tcancel context.CancelFunc
		tctx, tcancel = context.WithTimeout(rctx, opt.perTargetTimeout)
		defer tcancel()
	}
	attempts, err := attemptLoop(tctx, prev, tgt, opt)
	res.Attempts = attempts
	if err == nil {
		res.Status = StatusRolledBack
		res.Digest = prev.Digest()
		return res
	}
	res.Status = StatusFailed
	res.Err = fmt.Errorf("rollback: %w", err)
	return res
}

// attemptLoop is the shared retry engine: it ships cp to tgt until an
// attempt is acknowledged, the retry budget runs out, or tctx is done,
// spacing attempts with jittered exponential backoff. It returns the
// attempts consumed and the final error (nil on success).
//
// The connection is dialed once and the SetRequest prepared once, so
// every attempt retransmits the SAME request ID. That makes ack loss
// safe: an attempt whose install landed but whose acknowledgment was
// eaten is answered from the agent's retransmit cache on the next
// attempt instead of being applied a second time — the exactly-once
// property the chaos suite pins as "zero duplicate ConfigLoads".
func attemptLoop(tctx context.Context, cp *snmp.Config, tgt Target, opt *rolloutOptions) (int, error) {
	dial := opt.dial
	if dial == nil {
		dial = snmp.Dial
	}
	client, err := dial(tgt.Addr, tgt.AdminCommunity)
	if err != nil {
		return 0, err
	}
	defer client.Close()
	client.SetRetries(0) // retries belong to this loop, which counts them
	if opt.attemptTimeout > 0 {
		client.SetTimeout(opt.attemptTimeout)
	}
	prep, err := client.PrepareInstall(cp)
	if err != nil {
		return 0, err
	}
	attempts := 0
	var lastErr error
	for attempt := 0; attempt <= opt.retries; attempt++ {
		if attempt > 0 {
			var t0 time.Time
			if opt.om.on {
				t0 = time.Now()
			}
			err := sleepRollout(tctx, opt.rolloutBackoff(attempt-1))
			if opt.om.on {
				opt.om.sleep.Add(int64(time.Since(t0)))
			}
			if err != nil {
				break
			}
		}
		if tctx.Err() != nil {
			break
		}
		attempts++
		if err := prep.Send(tctx); err == nil {
			return attempts, nil
		} else {
			lastErr = err
		}
	}
	if lastErr == nil {
		lastErr = tctx.Err()
	}
	return attempts, lastErr
}

// installTarget runs one target's install. cfg is the shared generated
// configuration (nil when the instance has none); the target gets its
// own deep copy before any mutation. When pre-images are being captured
// it snapshots the agent's current config first (journaled before the
// install so a crash can always revert), and skips the install entirely
// when the live digest already matches the desired one.
func installTarget(rctx context.Context, cfg *snmp.Config, tgt Target, opt *rolloutOptions, pre *preStore) TargetResult {
	start := time.Now()
	res := TargetResult{Target: tgt}
	// Per-target span: only pay for the label slice when traced.
	var sp obs.Span
	if obs.TracingEnabled() {
		sp = obs.StartSpan("rollout.target", obs.Label{Key: "instance", Value: tgt.InstanceID})
	}
	defer func() {
		res.Duration = time.Since(start)
		if sp.Active() {
			sp.Label("status", res.Status.String())
			sp.Label("attempts", strconv.Itoa(res.Attempts))
		}
		sp.End()
	}()

	if cfg == nil {
		res.Status = StatusSkipped
		res.Err = fmt.Errorf("configgen: no configuration for instance %q", tgt.InstanceID)
		return res
	}

	// Deep copy: the generated config (and its Communities map) is shared
	// by every worker; the shallow copy this used to take let concurrent
	// installs race on one map.
	cp := DesiredConfig(cfg, tgt)
	key := targetKey(tgt.InstanceID, tgt.Addr)

	// Resume fast path: the journal already recorded this target
	// installed at the digest we are about to install — nothing to do,
	// no datagram sent.
	if d, ok := opt.resumed[key]; ok && d == cp.Digest() {
		res.Status = StatusInstalled
		res.Resumed = true
		res.Digest = d
		return res
	}

	tctx := rctx
	if opt.perTargetTimeout > 0 {
		var tcancel context.CancelFunc
		tctx, tcancel = context.WithTimeout(rctx, opt.perTargetTimeout)
		defer tcancel()
	}

	if opt.capturePre() {
		prev, err := FetchLiveContext(tctx, tgt.Addr, tgt.AdminCommunity, opt.attemptTimeout, opt.retries)
		if err != nil {
			res.Err = fmt.Errorf("pre-image capture: %w", err)
			if rctx.Err() != nil {
				res.Status = StatusCanceled
			} else {
				res.Status = StatusFailed
			}
			return res
		}
		pre.put(key, prev)
		if jerr := opt.journal.recordPreImage(tgt, prev); jerr != nil {
			// An unjournaled pre-image voids the rollback guarantee:
			// refuse to install over it.
			res.Status = StatusFailed
			res.Err = fmt.Errorf("journal pre-image: %w", jerr)
			return res
		}
		// Idempotency: the agent already runs the desired configuration
		// (a crashed run installed it after its last journal write, or an
		// operator re-ran a converged rollout). Installing again would
		// double-apply.
		if prev.Digest() == cp.Digest() {
			res.Status = StatusInstalled
			res.Resumed = true
			res.Digest = cp.Digest()
			return res
		}
	}

	attempts, err := attemptLoop(tctx, cp, tgt, opt)
	res.Attempts = attempts
	if err == nil {
		res.Status = StatusInstalled
		res.Digest = cp.Digest()
		return res
	}

	switch {
	case rctx.Err() != nil:
		res.Status = StatusCanceled
	default:
		// exhausted retries, or the per-target deadline expired
		res.Status = StatusFailed
	}
	res.Err = err
	return res
}

// sleepRollout sleeps for d or until ctx is done.
func sleepRollout(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Fault-tolerant rollout: the distributed installation phase of section 5
// made robust against the network it manages. Shipping configuration to
// 100k+ elements cannot assume a lossless transport, so DistributeContext
// treats each install as a fallible distributed operation — bounded
// workers, per-target retries with jittered exponential backoff, optional
// per-target deadlines, streamed results, and a report that distinguishes
// installed, failed, skipped and canceled targets instead of collapsing
// them into one error.

package configgen

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"time"

	"nmsl/internal/consistency"
	"nmsl/internal/obs"
	"nmsl/internal/snmp"
)

// Metric names recorded by DistributeContext. Durations are
// nanoseconds; MetricRolloutTargets and MetricRolloutTargetDuration
// carry a status label (installed, failed, skipped, canceled).
const (
	MetricRolloutRuns           = "nmsl_rollout_runs_total"
	MetricRolloutTargets        = "nmsl_rollout_targets_total"
	MetricRolloutAttempts       = "nmsl_rollout_attempts_total"
	MetricRolloutRetries        = "nmsl_rollout_retries_total"
	MetricRolloutBackoffSleep   = "nmsl_rollout_backoff_sleep_ns_total"
	MetricRolloutDuration       = "nmsl_rollout_duration_ns"
	MetricRolloutTargetDuration = "nmsl_rollout_target_duration_ns"
)

// RolloutStatus classifies one target's outcome.
type RolloutStatus int

const (
	// StatusInstalled means the configuration was acknowledged by the
	// agent.
	StatusInstalled RolloutStatus = iota
	// StatusFailed means every attempt errored (or the per-target
	// deadline expired).
	StatusFailed
	// StatusSkipped means no configuration was generated for the
	// target's instance, so nothing was sent.
	StatusSkipped
	// StatusCanceled means the rollout was canceled (context or
	// fail-fast) before the target succeeded.
	StatusCanceled
)

// String returns the lowercase status name.
func (s RolloutStatus) String() string {
	switch s {
	case StatusInstalled:
		return "installed"
	case StatusFailed:
		return "failed"
	case StatusSkipped:
		return "skipped"
	case StatusCanceled:
		return "canceled"
	}
	return fmt.Sprintf("RolloutStatus(%d)", int(s))
}

// TargetResult reports one target's rollout outcome.
type TargetResult struct {
	Target   Target
	Status   RolloutStatus
	Attempts int
	// Err is the last error observed (nil when installed).
	Err      error
	Duration time.Duration
}

// RolloutReport aggregates a rollout.
type RolloutReport struct {
	// Results holds every target's outcome, sorted by instance ID.
	Results []TargetResult
	// Installed, Failed, Skipped and Canceled count targets by status.
	Installed, Failed, Skipped, Canceled int
	// Attempts is the total number of install attempts across targets.
	Attempts int
	// Duration is the wall-clock time of the whole rollout.
	Duration time.Duration
	// Metrics is this rollout's observability snapshot — the
	// MetricRollout* names above — embedded so tests and callers can
	// assert on attempt, retry and latency counts without scraping an
	// endpoint. Nil when metrics are disabled (WithMetrics(obs.Disabled)).
	Metrics obs.Snapshot
}

// OK reports whether every target was installed.
func (r *RolloutReport) OK() bool {
	return r.Failed == 0 && r.Skipped == 0 && r.Canceled == 0
}

// Summary renders a one-line account of the rollout.
func (r *RolloutReport) Summary() string {
	return fmt.Sprintf("rollout: %d/%d installed, %d failed, %d skipped, %d canceled (%d attempts in %v)",
		r.Installed, len(r.Results), r.Failed, r.Skipped, r.Canceled, r.Attempts, r.Duration.Round(time.Millisecond))
}

// rolloutRunMetrics carries the run-scoped instruments the attempt
// loop updates; the zero value (on=false) makes every update a no-op.
type rolloutRunMetrics struct {
	on    bool
	sleep *obs.Counter
}

// rolloutOptions is the resolved option set.
type rolloutOptions struct {
	workers          int
	retries          int
	backoffBase      time.Duration
	backoffMax       time.Duration
	perTargetTimeout time.Duration
	attemptTimeout   time.Duration
	onResult         func(TargetResult)
	failFast         bool
	metrics          *obs.Registry
	om               rolloutRunMetrics
}

// RolloutOption tunes DistributeContext, mirroring the checker's
// functional options.
type RolloutOption func(*rolloutOptions)

// WithWorkers bounds concurrent installations; n <= 0 selects the
// default (8).
func WithWorkers(n int) RolloutOption {
	return func(o *rolloutOptions) { o.workers = n }
}

// WithRetries sets how many times a failed install is retried per target
// (n retries = n+1 attempts). Negative means zero.
func WithRetries(n int) RolloutOption {
	return func(o *rolloutOptions) {
		if n < 0 {
			n = 0
		}
		o.retries = n
	}
}

// WithBackoff sets the delay before the k-th retry of a target:
// base·2^k, jittered ±50%, capped at max. A zero base retries
// immediately.
func WithBackoff(base, max time.Duration) RolloutOption {
	return func(o *rolloutOptions) { o.backoffBase, o.backoffMax = base, max }
}

// WithPerTargetTimeout bounds the total time spent on one target across
// all its attempts and backoffs; zero means unbounded (the context still
// applies).
func WithPerTargetTimeout(d time.Duration) RolloutOption {
	return func(o *rolloutOptions) { o.perTargetTimeout = d }
}

// WithAttemptTimeout bounds each individual install attempt's wait for
// the agent's acknowledgment; zero selects the client default (500ms).
func WithAttemptTimeout(d time.Duration) RolloutOption {
	return func(o *rolloutOptions) { o.attemptTimeout = d }
}

// WithOnResult streams each target's result as it completes (from worker
// goroutines, serialized — fn need not lock). The callback may cancel
// the rollout's context to stop early.
func WithOnResult(fn func(TargetResult)) RolloutOption {
	return func(o *rolloutOptions) { o.onResult = fn }
}

// WithFailFast cancels the remaining targets after the first failure
// (skips count as failures for this purpose; cancellations do not).
func WithFailFast() RolloutOption {
	return func(o *rolloutOptions) { o.failFast = true }
}

// WithMetrics selects where the rollout's observability counters land:
// nil (the default) records into obs.Default, obs.Disabled turns
// instrumentation off entirely. The rollout's own numbers are also
// embedded in RolloutReport.Metrics unless disabled.
func WithMetrics(reg *obs.Registry) RolloutOption {
	return func(o *rolloutOptions) { o.metrics = reg }
}

// rolloutBackoff computes the jittered exponential delay before retry k.
func (o *rolloutOptions) rolloutBackoff(k int) time.Duration {
	if o.backoffBase <= 0 {
		return 0
	}
	d := o.backoffBase << uint(k)
	if o.backoffMax > 0 && (d > o.backoffMax || d <= 0) {
		d = o.backoffMax
	}
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	return time.Duration(half + rand.Int63n(2*half))
}

// DistributeContext derives every agent's configuration from the model
// and installs each one at its target over a bounded worker pool,
// retrying failures with backoff. It returns the report along with the
// context's error when the rollout was cut short; the report is complete
// either way (unfinished targets appear as canceled).
func DistributeContext(ctx context.Context, m *consistency.Model, targets []Target, opts ...RolloutOption) (*RolloutReport, error) {
	opt := rolloutOptions{
		workers:     8,
		retries:     2,
		backoffBase: 50 * time.Millisecond,
		backoffMax:  2 * time.Second,
	}
	for _, fn := range opts {
		fn(&opt)
	}
	if opt.workers <= 0 {
		opt.workers = 8
	}

	// Observability: run-scoped registry merged into the shared one at
	// the end, so overlapping rollouts keep exact per-run snapshots.
	reg := opt.metrics
	if reg == nil {
		reg = obs.Default
	}
	mon := reg.Enabled()
	var run *obs.Registry
	if mon {
		run = obs.NewRegistry()
		opt.om = rolloutRunMetrics{on: true, sleep: run.Counter(MetricRolloutBackoffSleep)}
	}
	sp := obs.StartSpan("rollout",
		obs.Label{Key: "targets", Value: strconv.Itoa(len(targets))},
		obs.Label{Key: "workers", Value: strconv.Itoa(opt.workers)})

	configs := Generate(m)
	start := time.Now()

	// rctx carries both external cancellation and fail-fast.
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	report := &RolloutReport{Results: make([]TargetResult, len(targets))}
	var mu sync.Mutex // serializes onResult and failFast bookkeeping
	var wg sync.WaitGroup
	sem := make(chan struct{}, opt.workers)
	for i, tgt := range targets {
		wg.Add(1)
		go func(i int, tgt Target) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res := installTarget(rctx, configs[tgt.InstanceID], tgt, &opt)
			mu.Lock()
			report.Results[i] = res
			if opt.onResult != nil {
				opt.onResult(res)
			}
			if opt.failFast && (res.Status == StatusFailed || res.Status == StatusSkipped) {
				cancel()
			}
			mu.Unlock()
		}(i, tgt)
	}
	wg.Wait()

	sort.Slice(report.Results, func(i, j int) bool {
		return report.Results[i].Target.InstanceID < report.Results[j].Target.InstanceID
	})
	retries := 0
	for _, r := range report.Results {
		report.Attempts += r.Attempts
		if r.Attempts > 1 {
			retries += r.Attempts - 1
		}
		switch r.Status {
		case StatusInstalled:
			report.Installed++
		case StatusFailed:
			report.Failed++
		case StatusSkipped:
			report.Skipped++
		case StatusCanceled:
			report.Canceled++
		}
		if mon {
			run.Histogram(obs.L(MetricRolloutTargetDuration, "status", r.Status.String())).Observe(int64(r.Duration))
		}
	}
	report.Duration = time.Since(start)
	if mon {
		run.Counter(MetricRolloutRuns).Inc()
		run.Counter(MetricRolloutAttempts).Add(int64(report.Attempts))
		run.Counter(MetricRolloutRetries).Add(int64(retries))
		run.Histogram(MetricRolloutDuration).Observe(int64(report.Duration))
		for s, n := range map[RolloutStatus]int{
			StatusInstalled: report.Installed,
			StatusFailed:    report.Failed,
			StatusSkipped:   report.Skipped,
			StatusCanceled:  report.Canceled,
		} {
			// Counter() first so zero-count statuses still appear in the
			// snapshot with an explicit 0.
			run.Counter(obs.L(MetricRolloutTargets, "status", s.String())).Add(int64(n))
		}
		reg.Merge(run)
		report.Metrics = run.Snapshot()
	}
	sp.Label("installed", strconv.Itoa(report.Installed))
	sp.Label("failed", strconv.Itoa(report.Failed))
	sp.End()
	return report, ctx.Err()
}

// installTarget runs one target's attempt loop. cfg is the shared
// generated configuration (nil when the instance has none); the target
// gets its own deep copy before any mutation.
func installTarget(rctx context.Context, cfg *snmp.Config, tgt Target, opt *rolloutOptions) TargetResult {
	start := time.Now()
	res := TargetResult{Target: tgt}
	sp := obs.StartSpan("rollout.target", obs.Label{Key: "instance", Value: tgt.InstanceID})
	defer func() {
		res.Duration = time.Since(start)
		sp.Label("status", res.Status.String())
		sp.Label("attempts", strconv.Itoa(res.Attempts))
		sp.End()
	}()

	if cfg == nil {
		res.Status = StatusSkipped
		res.Err = fmt.Errorf("configgen: no configuration for instance %q", tgt.InstanceID)
		return res
	}

	tctx := rctx
	if opt.perTargetTimeout > 0 {
		var tcancel context.CancelFunc
		tctx, tcancel = context.WithTimeout(rctx, opt.perTargetTimeout)
		defer tcancel()
	}

	// Deep copy: the generated config (and its Communities map) is shared
	// by every worker; the shallow copy this used to take let concurrent
	// installs race on one map.
	cp := cfg.Clone()
	cp.AdminCommunity = tgt.AdminCommunity

	var lastErr error
	for attempt := 0; attempt <= opt.retries; attempt++ {
		if attempt > 0 {
			var t0 time.Time
			if opt.om.on {
				t0 = time.Now()
			}
			err := sleepRollout(tctx, opt.rolloutBackoff(attempt-1))
			if opt.om.on {
				opt.om.sleep.Add(int64(time.Since(t0)))
			}
			if err != nil {
				break
			}
		}
		if tctx.Err() != nil {
			break
		}
		res.Attempts++
		err := InstallLiveContext(tctx, tgt.Addr, tgt.AdminCommunity, cp, opt.attemptTimeout)
		if err == nil {
			res.Status = StatusInstalled
			res.Err = nil
			return res
		}
		lastErr = err
	}

	switch {
	case rctx.Err() != nil:
		res.Status = StatusCanceled
		if lastErr == nil {
			lastErr = rctx.Err()
		}
	default:
		// exhausted retries, or the per-target deadline expired
		res.Status = StatusFailed
		if lastErr == nil && tctx.Err() != nil {
			lastErr = tctx.Err()
		}
	}
	res.Err = lastErr
	return res
}

// sleepRollout sleeps for d or until ctx is done.
func sleepRollout(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

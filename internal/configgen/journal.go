// Write-ahead journal for transactional rollouts. A journaled rollout
// records three kinds of durable facts, each as one fsync'd JSON line:
//
//	plan      — the full target list with each target's desired config
//	            digest, written before the first datagram leaves
//	preimage  — an agent's configuration as captured immediately before
//	            the rollout replaces it
//	result    — one target's final outcome (installed, failed, skipped,
//	            canceled, rolled-back) with the digest now in place
//	gate-failed — a canary wave's health gate rejected the wave
//
// The invariant the journal maintains: before any agent's configuration
// is overwritten, its pre-image is on disk; before the rollout believes
// a target done, its result is on disk. A process killed at any point
// therefore leaves a journal from which ResumeRollout can finish the run
// idempotently (targets whose installed digest already matches are
// skipped) and Rollback can restore every touched agent to its
// pre-image. A torn final line — the crash happened mid-write — is
// tolerated and ignored; any other malformed line is corruption and
// replay refuses the journal rather than guess.
package configgen

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"nmsl/internal/consistency"
	"nmsl/internal/snmp"
)

// Journal replay errors.
var (
	// ErrJournalEmpty means the journal has no complete records at all.
	ErrJournalEmpty = errors.New("configgen: journal is empty")
	// ErrJournalCorrupt means a complete (newline-terminated) record
	// failed to parse or violated the journal's invariants.
	ErrJournalCorrupt = errors.New("configgen: journal is corrupt")
)

// Record kinds.
const (
	recPlan     = "plan"
	recPreImage = "preimage"
	recResult   = "result"
	recGate     = "gate-failed"
)

// PlannedTarget is one target in the journal's plan record.
type PlannedTarget struct {
	Instance string `json:"instance"`
	Addr     string `json:"addr"`
	Admin    string `json:"admin,omitempty"`
	// Digest is the desired configuration's digest for this target.
	Digest string `json:"digest"`
}

// journalRecord is the on-disk shape of every journal line; Kind selects
// which fields are meaningful.
type journalRecord struct {
	Kind string `json:"kind"`
	// plan
	Targets []PlannedTarget `json:"targets,omitempty"`
	// preimage + result
	Instance string `json:"instance,omitempty"`
	Addr     string `json:"addr,omitempty"`
	Digest   string `json:"digest,omitempty"`
	// preimage
	Config json.RawMessage `json:"config,omitempty"`
	// result
	Status   string `json:"status,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Error    string `json:"error,omitempty"`
	// gate-failed
	Wave int    `json:"wave,omitempty"`
	Gate string `json:"gate,omitempty"`
}

// Journal is the append-side handle. A nil *Journal is valid and
// discards everything, so the rollout code never branches on whether
// journaling is enabled.
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	nosync bool
}

// setNoSync turns off the per-record fsync (WithJournalNoSync): records
// still reach the OS page cache in order, so the journal survives a
// killed process — only a machine crash can lose the tail. Mega-fleet
// rollouts (10k targets ≈ 30k records) buy their throughput here.
func (j *Journal) setNoSync(on bool) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.nosync = on
}

// CreateJournal starts a fresh journal at path and makes the plan
// durable before returning. It refuses an existing file: a journal
// already on disk is evidence of an unfinished rollout, which must be
// resumed (or rolled back, or removed) deliberately, not overwritten.
func CreateJournal(path string, plan []PlannedTarget) (*Journal, error) {
	seen := make(map[string]bool, len(plan))
	for _, t := range plan {
		key := targetKey(t.Instance, t.Addr)
		if seen[key] {
			return nil, fmt.Errorf("configgen: journal plan has duplicate target %s@%s", t.Instance, t.Addr)
		}
		seen[key] = true
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("configgen: create journal: %w", err)
	}
	j := &Journal{f: f}
	if err := j.append(journalRecord{Kind: recPlan, Targets: plan}); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return j, nil
}

// openJournalAppend reopens an existing journal for appending (resume
// and rollback runs continue the same file).
func openJournalAppend(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("configgen: reopen journal: %w", err)
	}
	return &Journal{f: f}, nil
}

// append marshals rec, writes it as one line and fsyncs before
// returning — the durability point every rollout step waits on.
func (j *Journal) append(rec journalRecord) error {
	if j == nil {
		return nil
	}
	blob, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("configgen: journal marshal: %w", err)
	}
	blob = append(blob, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(blob); err != nil {
		return fmt.Errorf("configgen: journal write: %w", err)
	}
	if !j.nosync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("configgen: journal sync: %w", err)
		}
	}
	return nil
}

// recordPreImage journals an agent's configuration as captured before
// the rollout touches it.
func (j *Journal) recordPreImage(tgt Target, cfg *snmp.Config) error {
	if j == nil {
		return nil
	}
	blob, err := snmp.MarshalConfig(cfg)
	if err != nil {
		return fmt.Errorf("configgen: journal pre-image marshal: %w", err)
	}
	return j.append(journalRecord{
		Kind:     recPreImage,
		Instance: tgt.InstanceID,
		Addr:     tgt.Addr,
		Digest:   cfg.Digest(),
		Config:   blob,
	})
}

// recordResult journals one target's final outcome.
func (j *Journal) recordResult(res TargetResult) error {
	if j == nil {
		return nil
	}
	rec := journalRecord{
		Kind:     recResult,
		Instance: res.Target.InstanceID,
		Addr:     res.Target.Addr,
		Digest:   res.Digest,
		Status:   res.Status.String(),
		Attempts: res.Attempts,
	}
	if res.Err != nil {
		rec.Error = res.Err.Error()
	}
	return j.append(rec)
}

// recordGate journals a wave's failed health gate.
func (j *Journal) recordGate(wave int, gateErr error) error {
	if j == nil {
		return nil
	}
	return j.append(journalRecord{Kind: recGate, Wave: wave, Gate: gateErr.Error()})
}

// Close releases the journal file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// TargetState is what replay reconstructs for one planned target.
type TargetState struct {
	Planned PlannedTarget
	// PreImage is the configuration captured before the rollout touched
	// the agent (nil if the target was never reached). The first capture
	// wins: a resumed run's re-capture sees the half-rolled-out state,
	// not the true original.
	PreImage       *snmp.Config
	PreImageDigest string
	// HasResult distinguishes "no outcome journaled" from the zero
	// status.
	HasResult bool
	Status    RolloutStatus
	// InstalledDigest is the digest the result line recorded as now in
	// place.
	InstalledDigest string
	Attempts        int
}

// JournalState is a replayed journal.
type JournalState struct {
	// Plan is the target list in plan order.
	Plan []PlannedTarget
	// ByKey maps targetKey(instance, addr) to that target's state.
	ByKey map[string]*TargetState
	// GateFailed records whether a gate-failed line was journaled.
	GateFailed bool
	// Truncated reports a torn final line (crash mid-write) that replay
	// ignored.
	Truncated bool
}

// ReplayJournal reconstructs the rollout state a journal describes. It
// is strict about everything except the final line: a journal's records
// are each fsync'd whole, so only the last line can legitimately be torn
// by a crash — a malformed line anywhere else, a record for an unplanned
// target, or a pre-image whose digest does not match its config is
// corruption, and replay returns an error wrapping ErrJournalCorrupt
// rather than resume from a lie.
func ReplayJournal(r io.Reader) (*JournalState, error) {
	br := bufio.NewReader(r)
	st := &JournalState{ByKey: map[string]*TargetState{}}
	n := 0
	for {
		line, err := br.ReadBytes('\n')
		complete := err == nil
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("configgen: journal read: %w", err)
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			if !complete {
				break
			}
			continue
		}
		var rec journalRecord
		if uerr := json.Unmarshal(trimmed, &rec); uerr != nil {
			if !complete {
				// Torn final line: the crash interrupted the write; the
				// record never became durable, so it never happened.
				st.Truncated = true
				break
			}
			return nil, fmt.Errorf("%w: line %d: %v", ErrJournalCorrupt, n+1, uerr)
		}
		n++
		if rerr := applyRecord(st, rec, n); rerr != nil {
			if !complete {
				st.Truncated = true
				break
			}
			return nil, rerr
		}
		if !complete {
			break
		}
	}
	if n == 0 {
		return nil, ErrJournalEmpty
	}
	return st, nil
}

// applyRecord folds one parsed record into the replay state.
func applyRecord(st *JournalState, rec journalRecord, line int) error {
	if line == 1 {
		if rec.Kind != recPlan {
			return fmt.Errorf("%w: first record is %q, want %q", ErrJournalCorrupt, rec.Kind, recPlan)
		}
		st.Plan = rec.Targets
		for _, t := range rec.Targets {
			key := targetKey(t.Instance, t.Addr)
			if _, dup := st.ByKey[key]; dup {
				return fmt.Errorf("%w: plan has duplicate target %s@%s", ErrJournalCorrupt, t.Instance, t.Addr)
			}
			st.ByKey[key] = &TargetState{Planned: t}
		}
		return nil
	}
	switch rec.Kind {
	case recPlan:
		return fmt.Errorf("%w: line %d: second plan record", ErrJournalCorrupt, line)
	case recPreImage:
		ts, ok := st.ByKey[targetKey(rec.Instance, rec.Addr)]
		if !ok {
			return fmt.Errorf("%w: line %d: pre-image for unplanned target %s@%s", ErrJournalCorrupt, line, rec.Instance, rec.Addr)
		}
		cfg, err := snmp.UnmarshalConfig(rec.Config)
		if err != nil {
			return fmt.Errorf("%w: line %d: pre-image config: %v", ErrJournalCorrupt, line, err)
		}
		if cfg.Digest() != rec.Digest {
			return fmt.Errorf("%w: line %d: pre-image digest mismatch for %s", ErrJournalCorrupt, line, rec.Instance)
		}
		if ts.PreImage == nil { // first capture is the true pre-image
			ts.PreImage = cfg
			ts.PreImageDigest = rec.Digest
		}
		return nil
	case recResult:
		ts, ok := st.ByKey[targetKey(rec.Instance, rec.Addr)]
		if !ok {
			return fmt.Errorf("%w: line %d: result for unplanned target %s@%s", ErrJournalCorrupt, line, rec.Instance, rec.Addr)
		}
		status, err := parseRolloutStatus(rec.Status)
		if err != nil {
			return fmt.Errorf("%w: line %d: %v", ErrJournalCorrupt, line, err)
		}
		ts.HasResult = true
		ts.Status = status
		ts.InstalledDigest = rec.Digest
		ts.Attempts = rec.Attempts
		return nil
	case recGate:
		st.GateFailed = true
		return nil
	default:
		return fmt.Errorf("%w: line %d: unknown record kind %q", ErrJournalCorrupt, line, rec.Kind)
	}
}

// LoadJournal replays the journal file at path.
func LoadJournal(path string) (*JournalState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("configgen: open journal: %w", err)
	}
	defer f.Close()
	return ReplayJournal(f)
}

// planTargets converts the journal's plan back into rollout targets.
func planTargets(plan []PlannedTarget) []Target {
	targets := make([]Target, len(plan))
	for i, t := range plan {
		targets[i] = Target{InstanceID: t.Instance, Addr: t.Addr, AdminCommunity: t.Admin}
	}
	return targets
}

// ResumeRollout finishes a journaled rollout that was killed mid-flight:
// it replays the journal at journalPath, takes the target list from the
// plan record, and re-runs the rollout idempotently — targets whose
// journaled result already shows the desired digest installed are
// satisfied without a datagram, targets the crash caught between install
// and result-write are detected by their live digest (the pre-image
// capture re-reads it) and not applied twice, and everything else is
// installed normally. New outcomes are appended to the same journal.
// The model must be the one the original rollout distributed; a drifted
// model simply means the digests differ and those targets re-install.
func ResumeRollout(ctx context.Context, m *consistency.Model, journalPath string, opts ...RolloutOption) (*RolloutReport, error) {
	opt, err := applyRolloutOptions(opts)
	if err != nil {
		return nil, err
	}
	st, err := LoadJournal(journalPath)
	if err != nil {
		return nil, err
	}
	j, err := openJournalAppend(journalPath)
	if err != nil {
		return nil, err
	}
	opt.journal = j
	opt.journalPath = journalPath
	opt.resumed = make(map[string]string)
	for key, ts := range st.ByKey {
		if ts.HasResult && ts.Status == StatusInstalled {
			opt.resumed[key] = ts.InstalledDigest
		}
	}
	return rolloutRun(ctx, Generate(m), planTargets(st.Plan), opt)
}

// Rollback restores every agent a journaled rollout touched to its
// journaled pre-image: targets with an installed result, and targets
// with a captured pre-image but no result at all (the crash window —
// the install may or may not have landed). Targets whose live digest
// already equals the pre-image are left alone. The report covers only
// the rollback candidates; OK() is false if any restore failed.
func Rollback(ctx context.Context, journalPath string, opts ...RolloutOption) (*RolloutReport, error) {
	opt, err := applyRolloutOptions(opts)
	if err != nil {
		return nil, err
	}
	st, err := LoadJournal(journalPath)
	if err != nil {
		return nil, err
	}
	j, err := openJournalAppend(journalPath)
	if err != nil {
		return nil, err
	}
	opt.journal = j
	defer j.Close()

	type candidate struct {
		tgt Target
		pre *snmp.Config
	}
	var cands []candidate
	for _, pt := range st.Plan {
		ts := st.ByKey[targetKey(pt.Instance, pt.Addr)]
		if ts == nil || ts.PreImage == nil {
			continue
		}
		if ts.HasResult && ts.Status != StatusInstalled {
			continue // never landed, or already rolled back
		}
		cands = append(cands, candidate{tgt: Target{InstanceID: pt.Instance, Addr: pt.Addr, AdminCommunity: pt.Admin}, pre: ts.PreImage})
	}

	start := time.Now()
	report := &RolloutReport{Results: make([]TargetResult, len(cands))}
	var mu sync.Mutex
	var journalErr error
	var wg sync.WaitGroup
	sem := make(chan struct{}, opt.workers)
	for i, c := range cands {
		wg.Add(1)
		go func(i int, c candidate) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res := rollbackTarget(ctx, c.tgt, c.pre, opt)
			mu.Lock()
			defer mu.Unlock()
			report.Results[i] = res
			if err := j.recordResult(res); err != nil && journalErr == nil {
				journalErr = err
			}
			if opt.onResult != nil {
				opt.onResult(res)
			}
		}(i, c)
	}
	wg.Wait()

	for _, r := range report.Results {
		report.Attempts += r.Attempts
		switch r.Status {
		case StatusRolledBack:
			report.RolledBack++
		case StatusFailed:
			report.Failed++
		case StatusCanceled:
			report.Canceled++
		}
	}
	report.Duration = time.Since(start)
	if journalErr != nil {
		return report, fmt.Errorf("configgen: journal: %w", journalErr)
	}
	return report, ctx.Err()
}

// rollbackTarget restores one pre-image, skipping the write when the
// agent already runs it.
func rollbackTarget(ctx context.Context, tgt Target, pre *snmp.Config, opt *rolloutOptions) TargetResult {
	start := time.Now()
	live, err := FetchLiveContext(ctx, tgt.Addr, tgt.AdminCommunity, opt.attemptTimeout, opt.retries)
	if err == nil && live.Digest() == pre.Digest() {
		return TargetResult{
			Target:   tgt,
			Status:   StatusRolledBack,
			Digest:   pre.Digest(),
			Resumed:  true, // nothing applied; the pre-image was already live
			Duration: time.Since(start),
		}
	}
	res := restoreTarget(ctx, tgt, pre, opt)
	res.Duration = time.Since(start)
	return res
}

package configgen

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"nmsl/internal/consistency"
)

// Section 5 of the paper observes that "it may be too time consuming to
// generate the configuration output from one central location … It may be
// possible to perform the configuration phase in a distributed manner. If
// a process's configuration depends only on its own specification, the
// configuration information for that process can be generated from its
// specification alone." Our per-instance derivation has exactly that
// property — each agent's configuration depends only on its own exports
// and the exports of domains containing it — so generation and
// installation parallelize per network element. Distributor implements
// the fan-out.

// Target tells the Distributor where one agent instance lives.
type Target struct {
	// InstanceID is the consistency-model instance, e.g.
	// "snmpdReadOnly@romano.cs.wisc.edu#0".
	InstanceID string
	// Addr is the agent's UDP address.
	Addr string
	// AdminCommunity authenticates the generator to the agent.
	AdminCommunity string
}

// InstallResult reports one installation attempt.
type InstallResult struct {
	Target   Target
	Err      error
	Duration time.Duration
}

// DistributeOptions tune the fan-out.
type DistributeOptions struct {
	// Workers bounds concurrent installations; zero selects 8.
	Workers int
}

// Distribute derives every agent's configuration from the model and
// installs each one concurrently at its target. Instances without a
// target are skipped; targets without a generated configuration are
// reported as errors. Results are sorted by instance ID.
//
// Distribute is the pre-context compatibility wrapper around
// DistributeContext: default retry policy, no cancellation, flat result
// list.
func Distribute(m *consistency.Model, targets []Target, opts DistributeOptions) []InstallResult {
	report, _ := DistributeContext(context.Background(), m, targets, WithWorkers(opts.Workers))
	results := make([]InstallResult, len(report.Results))
	for i, r := range report.Results {
		results[i] = InstallResult{Target: r.Target, Err: r.Err, Duration: r.Duration}
	}
	return results
}

// ParseTargets reads a rollout target list, one target per line:
//
//	instanceID addr [adminCommunity]
//
// Blank lines and #-comments are ignored. Targets omitting the admin
// community get defaultAdmin. This is the fleet-description format the
// nmslgen -targets flag consumes.
func ParseTargets(r io.Reader, defaultAdmin string) ([]Target, error) {
	var targets []Target
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("configgen: targets line %d: want \"instanceID addr [admin]\", got %q", line, text)
		}
		tgt := Target{InstanceID: fields[0], Addr: fields[1], AdminCommunity: defaultAdmin}
		if len(fields) == 3 {
			tgt.AdminCommunity = fields[2]
		}
		targets = append(targets, tgt)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return targets, nil
}

// Failed filters the results with errors.
func Failed(results []InstallResult) []InstallResult {
	var out []InstallResult
	for _, r := range results {
		if r.Err != nil {
			out = append(out, r)
		}
	}
	return out
}

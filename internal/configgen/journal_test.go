package configgen

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nmsl/internal/netsim"
	"nmsl/internal/obs"
)

// TestJournalRoundTrip: a journaled rollout leaves a journal whose
// replay reconstructs the plan, every pre-image and every result.
func TestJournalRoundTrip(t *testing.T) {
	m, err := netsim.Model(netsim.Params{Domains: 2, SystemsPerDomain: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	targets := startRolloutFleet(t, m, "adm", nil)
	path := filepath.Join(t.TempDir(), "rollout.journal")

	report, err := DistributeContext(context.Background(), m, targets,
		WithWorkers(4),
		WithRetries(1),
		WithBackoff(time.Millisecond, 2*time.Millisecond),
		WithAttemptTimeout(200*time.Millisecond),
		WithJournal(path),
		WithMetrics(obs.Disabled),
	)
	if err != nil || !report.OK() {
		t.Fatalf("rollout: err=%v %s", err, report.Summary())
	}

	st, err := LoadJournal(path)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(st.Plan) != len(targets) {
		t.Fatalf("plan has %d targets, want %d", len(st.Plan), len(targets))
	}
	if st.Truncated || st.GateFailed {
		t.Fatalf("clean journal replayed as truncated=%v gateFailed=%v", st.Truncated, st.GateFailed)
	}
	configs := Generate(m)
	for _, pt := range st.Plan {
		ts := st.ByKey[targetKey(pt.Instance, pt.Addr)]
		if ts == nil {
			t.Fatalf("no state for planned target %s", pt.Instance)
		}
		if ts.PreImage == nil {
			t.Errorf("%s: no pre-image journaled", pt.Instance)
		}
		if !ts.HasResult || ts.Status != StatusInstalled {
			t.Errorf("%s: hasResult=%v status=%v", pt.Instance, ts.HasResult, ts.Status)
		}
		want := DesiredConfig(configs[pt.Instance], Target{InstanceID: pt.Instance, Addr: pt.Addr, AdminCommunity: pt.Admin}).Digest()
		if ts.InstalledDigest != want {
			t.Errorf("%s: installed digest %.12s != desired %.12s", pt.Instance, ts.InstalledDigest, want)
		}
		if pt.Digest != want {
			t.Errorf("%s: planned digest %.12s != desired %.12s", pt.Instance, pt.Digest, want)
		}
	}

	// A journal already on disk must refuse a fresh rollout.
	if _, err := DistributeContext(context.Background(), m, targets, WithJournal(path), WithMetrics(obs.Disabled)); err == nil {
		t.Fatal("second rollout overwrote an existing journal")
	}
}

// TestReplayJournalRejects pins the replay rules: empty journals, torn
// final lines, corrupt interior lines, unknown kinds, unplanned targets
// and tampered pre-images.
func TestReplayJournalRejects(t *testing.T) {
	plan := `{"kind":"plan","targets":[{"instance":"a","addr":"1.2.3.4:1","digest":"d1"}]}` + "\n"
	result := `{"kind":"result","instance":"a","addr":"1.2.3.4:1","digest":"d1","status":"installed","attempts":1}` + "\n"

	t.Run("empty", func(t *testing.T) {
		if _, err := ReplayJournal(strings.NewReader("")); !errors.Is(err, ErrJournalEmpty) {
			t.Fatalf("err = %v, want ErrJournalEmpty", err)
		}
	})
	t.Run("valid", func(t *testing.T) {
		st, err := ReplayJournal(strings.NewReader(plan + result))
		if err != nil {
			t.Fatal(err)
		}
		ts := st.ByKey[targetKey("a", "1.2.3.4:1")]
		if ts == nil || !ts.HasResult || ts.Status != StatusInstalled || ts.InstalledDigest != "d1" {
			t.Fatalf("state %+v", ts)
		}
	})
	t.Run("torn final line ignored", func(t *testing.T) {
		st, err := ReplayJournal(strings.NewReader(plan + result[:len(result)/2]))
		if err != nil {
			t.Fatalf("torn final line: %v", err)
		}
		if !st.Truncated {
			t.Fatal("Truncated not reported")
		}
		if st.ByKey[targetKey("a", "1.2.3.4:1")].HasResult {
			t.Fatal("torn result applied")
		}
	})
	t.Run("corrupt interior line", func(t *testing.T) {
		if _, err := ReplayJournal(strings.NewReader(plan + "garbage{{{\n" + result)); !errors.Is(err, ErrJournalCorrupt) {
			t.Fatalf("err = %v, want ErrJournalCorrupt", err)
		}
	})
	t.Run("first record not plan", func(t *testing.T) {
		if _, err := ReplayJournal(strings.NewReader(result)); !errors.Is(err, ErrJournalCorrupt) {
			t.Fatalf("err = %v, want ErrJournalCorrupt", err)
		}
	})
	t.Run("second plan", func(t *testing.T) {
		if _, err := ReplayJournal(strings.NewReader(plan + plan)); !errors.Is(err, ErrJournalCorrupt) {
			t.Fatalf("err = %v, want ErrJournalCorrupt", err)
		}
	})
	t.Run("unplanned target", func(t *testing.T) {
		bad := `{"kind":"result","instance":"ghost","addr":"9.9.9.9:9","status":"installed"}` + "\n"
		if _, err := ReplayJournal(strings.NewReader(plan + bad)); !errors.Is(err, ErrJournalCorrupt) {
			t.Fatalf("err = %v, want ErrJournalCorrupt", err)
		}
	})
	t.Run("unknown kind", func(t *testing.T) {
		bad := `{"kind":"mystery"}` + "\n"
		if _, err := ReplayJournal(strings.NewReader(plan + bad)); !errors.Is(err, ErrJournalCorrupt) {
			t.Fatalf("err = %v, want ErrJournalCorrupt", err)
		}
	})
	t.Run("unknown status", func(t *testing.T) {
		bad := `{"kind":"result","instance":"a","addr":"1.2.3.4:1","status":"exploded"}` + "\n"
		if _, err := ReplayJournal(strings.NewReader(plan + bad)); !errors.Is(err, ErrJournalCorrupt) {
			t.Fatalf("err = %v, want ErrJournalCorrupt", err)
		}
	})
	t.Run("tampered pre-image digest", func(t *testing.T) {
		bad := `{"kind":"preimage","instance":"a","addr":"1.2.3.4:1","digest":"not-the-hash","config":{"communities":{},"adminCommunity":"adm"}}` + "\n"
		if _, err := ReplayJournal(strings.NewReader(plan + bad)); !errors.Is(err, ErrJournalCorrupt) {
			t.Fatalf("err = %v, want ErrJournalCorrupt", err)
		}
	})
	t.Run("gate record", func(t *testing.T) {
		gate := `{"kind":"gate-failed","wave":0,"gate":"boom"}` + "\n"
		st, err := ReplayJournal(strings.NewReader(plan + gate))
		if err != nil {
			t.Fatal(err)
		}
		if !st.GateFailed {
			t.Fatal("gate record not reflected")
		}
	})
}

// FuzzJournalReplay: replay must never panic and never fabricate state
// — any input either errors cleanly or yields a state consistent with
// its own plan.
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte(`{"kind":"plan","targets":[{"instance":"a","addr":"1:1","digest":"d"}]}` + "\n"))
	f.Add([]byte(`{"kind":"plan","targets":[{"instance":"a","addr":"1:1","digest":"d"}]}` + "\n" +
		`{"kind":"result","instance":"a","addr":"1:1","digest":"d","status":"installed","attempts":2}` + "\n"))
	f.Add([]byte(`{"kind":"plan","targets":[{"instance":"a","addr":"1:1","digest":"d"}]}` + "\n" +
		`{"kind":"result","instance":"a","addr":"1:1","dig`)) // torn
	f.Add([]byte("\x00\x01\x02 not json at all\n"))
	f.Add([]byte(`{"kind":"gate-failed","wave":3,"gate":"x"}` + "\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := ReplayJournal(bytes.NewReader(data))
		if err != nil {
			if st != nil {
				t.Fatal("error with non-nil state")
			}
			return
		}
		// Whatever replayed must be internally consistent: every state
		// belongs to a planned target, and results carry valid statuses.
		if len(st.ByKey) != len(st.Plan) {
			t.Fatalf("%d states for %d planned targets", len(st.ByKey), len(st.Plan))
		}
		for key, ts := range st.ByKey {
			if targetKey(ts.Planned.Instance, ts.Planned.Addr) != key {
				t.Fatalf("state keyed %q holds target %s@%s", key, ts.Planned.Instance, ts.Planned.Addr)
			}
			if ts.HasResult {
				if _, err := parseRolloutStatus(ts.Status.String()); err != nil {
					t.Fatalf("replayed invalid status %v", ts.Status)
				}
			}
			if ts.PreImage != nil && ts.PreImage.Digest() != ts.PreImageDigest {
				t.Fatal("pre-image digest mismatch survived replay")
			}
		}
	})
}

// TestParseTargets covers the fleet-file format.
func TestParseTargets(t *testing.T) {
	in := `
# fleet
a@x#0 127.0.0.1:1161
b@y#0 127.0.0.1:1162 special-admin

`
	targets, err := ParseTargets(strings.NewReader(in), "default-admin")
	if err != nil {
		t.Fatal(err)
	}
	want := []Target{
		{InstanceID: "a@x#0", Addr: "127.0.0.1:1161", AdminCommunity: "default-admin"},
		{InstanceID: "b@y#0", Addr: "127.0.0.1:1162", AdminCommunity: "special-admin"},
	}
	if len(targets) != len(want) {
		t.Fatalf("parsed %d targets, want %d", len(targets), len(want))
	}
	for i := range want {
		if targets[i] != want[i] {
			t.Errorf("target %d = %+v, want %+v", i, targets[i], want[i])
		}
	}
	if _, err := ParseTargets(strings.NewReader("only-one-field\n"), "d"); err == nil {
		t.Fatal("malformed line accepted")
	}
	if _, err := ParseTargets(strings.NewReader("a b c d\n"), "d"); err == nil {
		t.Fatal("four-field line accepted")
	}
}

// TestRollbackRestoresJournaledPreImages: an explicit Rollback of a
// completed journaled rollout returns every touched agent to its
// pre-rollout configuration.
func TestRollbackRestoresJournaledPreImages(t *testing.T) {
	m, err := netsim.Model(netsim.Params{Domains: 2, SystemsPerDomain: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	targets, agents := startRolloutFleetAgents(t, m, "adm")
	pre := map[string]string{}
	for _, tgt := range targets {
		pre[tgt.InstanceID] = agents[tgt.InstanceID].ConfigSnapshot().Digest()
	}
	path := filepath.Join(t.TempDir(), "rollout.journal")

	report, err := DistributeContext(context.Background(), m, targets,
		WithRetries(1),
		WithBackoff(time.Millisecond, 2*time.Millisecond),
		WithAttemptTimeout(200*time.Millisecond),
		WithJournal(path),
		WithMetrics(obs.Disabled),
	)
	if err != nil || !report.OK() {
		t.Fatalf("rollout: err=%v %s", err, report.Summary())
	}

	rb, err := Rollback(context.Background(), path,
		WithRetries(1),
		WithAttemptTimeout(200*time.Millisecond),
		WithMetrics(obs.Disabled),
	)
	if err != nil {
		t.Fatalf("rollback: %v", err)
	}
	if rb.RolledBack != len(targets) || rb.Failed != 0 {
		t.Fatalf("rollback report: %s", rb.Summary())
	}
	for _, tgt := range targets {
		if got := agents[tgt.InstanceID].ConfigSnapshot().Digest(); got != pre[tgt.InstanceID] {
			t.Errorf("%s: digest %.12s != pre-rollout %.12s", tgt.InstanceID, got, pre[tgt.InstanceID])
		}
	}

	// A second rollback is a no-op: the journal now records every
	// target rolled-back, so there are no candidates left and nothing
	// is re-applied.
	loads := map[string]int64{}
	for id, a := range agents {
		loads[id] = a.Stats().ConfigLoads
	}
	rb2, err := Rollback(context.Background(), path,
		WithRetries(1),
		WithAttemptTimeout(200*time.Millisecond),
		WithMetrics(obs.Disabled),
	)
	if err != nil || len(rb2.Results) != 0 {
		t.Fatalf("second rollback: err=%v %s", err, rb2.Summary())
	}
	for id, a := range agents {
		if a.Stats().ConfigLoads != loads[id] {
			t.Errorf("%s: idempotent rollback re-applied a config", id)
		}
	}
	if os.Getenv("NMSL_DEBUG_JOURNAL") != "" {
		blob, _ := os.ReadFile(path)
		t.Logf("journal:\n%s", blob)
	}
}

package configgen

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nmsl/internal/consistency"
	"nmsl/internal/netsim"
	"nmsl/internal/obs"
	"nmsl/internal/snmp"
)

// startRolloutFleetAgents is startRolloutFleet plus access to the
// agents themselves, keyed by instance ID, so chaos tests can assert on
// ConfigLoads (exactly-once installs) and live digests.
func startRolloutFleetAgents(t *testing.T, m *consistency.Model, admin string) ([]Target, map[string]*snmp.Agent) {
	t.Helper()
	configs := Generate(m)
	var targets []Target
	agents := make(map[string]*snmp.Agent, len(configs))
	for id := range configs {
		store := snmp.NewStore()
		snmp.PopulateFromMIB(store, m.Spec.MIB, "mgmt.mib")
		agent := snmp.NewAgent(store, &snmp.Config{
			Communities:    map[string]*snmp.CommunityConfig{},
			AdminCommunity: admin,
		})
		addr, err := agent.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { agent.Close() })
		agents[id] = agent
		targets = append(targets, Target{InstanceID: id, Addr: addr.String(), AdminCommunity: admin})
	}
	return targets, agents
}

// rolloutOpts is the fast-retry option set the chaos tests share.
func chaosOpts(extra ...RolloutOption) []RolloutOption {
	opts := []RolloutOption{
		WithRetries(2),
		WithBackoff(time.Millisecond, 4*time.Millisecond),
		WithAttemptTimeout(200 * time.Millisecond),
		WithMetrics(obs.Disabled),
	}
	return append(opts, extra...)
}

// assertExactlyOnce fails unless every agent saw exactly one config
// install across the crashed run and its resume.
func assertExactlyOnce(t *testing.T, m *consistency.Model, targets []Target, agents map[string]*snmp.Agent) {
	t.Helper()
	configs := Generate(m)
	for _, tgt := range targets {
		agent := agents[tgt.InstanceID]
		if loads := agent.Stats().ConfigLoads; loads != 1 {
			t.Errorf("%s: %d config loads, want exactly 1 (double-apply or lost install)", tgt.InstanceID, loads)
		}
		want := DesiredConfig(configs[tgt.InstanceID], tgt).Digest()
		if got := agent.ConfigSnapshot().Digest(); got != want {
			t.Errorf("%s: live digest %.12s != desired %.12s", tgt.InstanceID, got, want)
		}
	}
}

// TestRolloutResumesAfterCrash is the acceptance bar for the journal: a
// 50-target journaled rollout killed after roughly half the results are
// in resumes from the journal to 50/50 installed with zero duplicate
// applies (every agent's ConfigLoads is exactly 1).
func TestRolloutResumesAfterCrash(t *testing.T) {
	m, err := netsim.Model(netsim.Params{Domains: 25, SystemsPerDomain: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	targets, agents := startRolloutFleetAgents(t, m, "adm")
	if len(targets) != 50 {
		t.Fatalf("fleet size %d, want 50", len(targets))
	}
	path := filepath.Join(t.TempDir(), "rollout.journal")

	// "Crash": cancel the rollout's context the moment the 25th result
	// lands, mid-wave, exactly as a SIGKILL would strand the journal.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var landed atomic.Int32
	report, err := DistributeContext(ctx, m, targets, chaosOpts(
		WithJournal(path),
		WithOnResult(func(TargetResult) {
			if landed.Add(1) == 25 {
				cancel()
			}
		}),
	)...)
	if err == nil {
		t.Fatalf("crashed rollout reported no error: %s", report.Summary())
	}
	if report.Installed == 0 || report.Installed == len(targets) {
		t.Fatalf("crash timing produced no partial state: %s", report.Summary())
	}
	t.Logf("crashed run: %s", report.Summary())

	resumed, err := ResumeRollout(context.Background(), m, path, chaosOpts()...)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !resumed.OK() || resumed.Installed != len(targets) {
		t.Fatalf("resume did not converge: %s", resumed.Summary())
	}
	skipped := 0
	for _, r := range resumed.Results {
		if r.Resumed {
			skipped++
		}
	}
	if skipped < report.Installed {
		t.Errorf("resume re-ran journaled targets: %d resumed < %d previously installed", skipped, report.Installed)
	}
	t.Logf("resumed run: %s (%d satisfied from the journal)", resumed.Summary(), skipped)
	assertExactlyOnce(t, m, targets, agents)
}

// chaosRun counts TestChaosKillResume invocations within one test
// binary so `go test -count=N` kills at a different journal offset each
// run even with a fixed base seed.
var chaosRun atomic.Int64

// TestChaosKillResume kills a journaled rollout at a pseudo-random
// journal offset (seed from NMSL_CHAOS_SEED when set, logged either
// way) and requires resume to converge with exactly-once installs. This
// is the `make chaos` workload.
func TestChaosKillResume(t *testing.T) {
	seed := int64(20260805) + chaosRun.Add(1)
	if env := os.Getenv("NMSL_CHAOS_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("NMSL_CHAOS_SEED: %v", err)
		}
		seed = v
	}
	t.Logf("chaos seed %d (rerun with NMSL_CHAOS_SEED=%d)", seed, seed)

	m, err := netsim.Model(netsim.Params{Domains: 5, SystemsPerDomain: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	targets, agents := startRolloutFleetAgents(t, m, "adm")
	path := filepath.Join(t.TempDir(), "rollout.journal")

	// Kill after 1..len-1 results, single worker so the offset maps
	// deterministically onto journal progress.
	killAfter := int32(1 + seed%int64(len(targets)-1))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var landed atomic.Int32
	report, err := DistributeContext(ctx, m, targets, chaosOpts(
		WithWorkers(1),
		WithJournal(path),
		WithJitterSeed(seed),
		WithOnResult(func(TargetResult) {
			if landed.Add(1) == killAfter {
				cancel()
			}
		}),
	)...)
	if err == nil {
		t.Fatalf("killed rollout reported no error: %s", report.Summary())
	}
	t.Logf("killed after %d results: %s", killAfter, report.Summary())

	resumed, err := ResumeRollout(context.Background(), m, path, chaosOpts()...)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !resumed.OK() || resumed.Installed != len(targets) {
		t.Fatalf("resume did not converge: %s", resumed.Summary())
	}
	assertExactlyOnce(t, m, targets, agents)
}

// TestCanaryGateRollsBack is the acceptance bar for canary waves: a
// rollout whose first (canary) wave fails its health gate must restore
// every canary target to its pre-image digest, never touch the
// remaining waves, and surface a *GateError.
func TestCanaryGateRollsBack(t *testing.T) {
	m, err := netsim.Model(netsim.Params{Domains: 5, SystemsPerDomain: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	targets, agents := startRolloutFleetAgents(t, m, "adm")
	if len(targets) != 10 {
		t.Fatalf("fleet size %d, want 10", len(targets))
	}
	// Wave membership follows target order: the first 20% are canaries.
	canaries := map[string]bool{
		targets[0].InstanceID: true,
		targets[1].InstanceID: true,
	}
	preDigest := map[string]string{}
	for _, tgt := range targets {
		preDigest[tgt.InstanceID] = agents[tgt.InstanceID].ConfigSnapshot().Digest()
	}
	path := filepath.Join(t.TempDir(), "rollout.journal")

	gateRuns := 0
	var mu sync.Mutex
	report, err := DistributeContext(context.Background(), m, targets, chaosOpts(
		WithJournal(path),
		WithStages(0.2),
		WithGate(func(_ context.Context, wave []TargetResult) error {
			mu.Lock()
			gateRuns++
			mu.Unlock()
			return fmt.Errorf("injected fault: %d canaries unhealthy", len(wave))
		}),
	)...)

	var gerr *GateError
	if !errors.As(err, &gerr) {
		t.Fatalf("err = %v, want *GateError", err)
	}
	if gerr.Wave != 0 {
		t.Fatalf("gate failed wave %d, want 0", gerr.Wave)
	}
	if gateRuns != 1 {
		t.Fatalf("gate ran %d times; later waves must never be attempted", gateRuns)
	}
	if report.RolledBack != 2 || report.Canceled != 8 || report.Installed != 0 {
		t.Fatalf("counts: %s", report.Summary())
	}
	if report.OK() {
		t.Fatal("rolled-back rollout reported OK")
	}
	if !strings.Contains(report.Summary(), "2 rolled-back") {
		t.Fatalf("Summary omits rolled-back count: %s", report.Summary())
	}

	for _, tgt := range targets {
		agent := agents[tgt.InstanceID]
		got := agent.ConfigSnapshot().Digest()
		if got != preDigest[tgt.InstanceID] {
			t.Errorf("%s: digest %.12s != pre-image %.12s", tgt.InstanceID, got, preDigest[tgt.InstanceID])
		}
		loads := agent.Stats().ConfigLoads
		if canaries[tgt.InstanceID] {
			// install + restore
			if loads != 2 {
				t.Errorf("canary %s: %d config loads, want 2", tgt.InstanceID, loads)
			}
		} else if loads != 0 {
			t.Errorf("non-canary %s was touched: %d config loads", tgt.InstanceID, loads)
		}
	}

	// The journal tells the same story.
	st, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !st.GateFailed {
		t.Error("journal has no gate-failed record")
	}
	rolledBack := 0
	for _, ts := range st.ByKey {
		if ts.HasResult && ts.Status == StatusRolledBack {
			rolledBack++
		}
	}
	if rolledBack != 2 {
		t.Errorf("journal records %d rolled-back targets, want 2", rolledBack)
	}
}

// TestMaxFailureRateGate: the built-in failure-rate threshold aborts
// and rolls back without any custom gate callback.
func TestMaxFailureRateGate(t *testing.T) {
	m, err := netsim.Model(netsim.Params{Domains: 2, SystemsPerDomain: 2, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	targets, agents := startRolloutFleetAgents(t, m, "adm")
	if len(targets) != 4 {
		t.Fatalf("fleet size %d, want 4", len(targets))
	}
	// Break the first canary: nothing listens at port 1.
	dead := targets[0]
	targets[0].Addr = "127.0.0.1:1"
	preDigest := agents[targets[1].InstanceID].ConfigSnapshot().Digest()

	report, err := DistributeContext(context.Background(), m, targets, chaosOpts(
		WithStages(0.5), // wave 0 = targets[0:2]
		WithMaxFailureRate(0.25),
	)...)
	var gerr *GateError
	if !errors.As(err, &gerr) || gerr.Wave != 0 {
		t.Fatalf("err = %v, want *GateError for wave 0", err)
	}
	if report.Failed != 1 || report.RolledBack != 1 || report.Canceled != 2 {
		t.Fatalf("counts: %s", report.Summary())
	}
	// The healthy canary is back on its pre-image; the dead one never
	// reported installed.
	if got := agents[targets[1].InstanceID].ConfigSnapshot().Digest(); got != preDigest {
		t.Errorf("healthy canary not restored: %.12s != %.12s", got, preDigest)
	}
	if loads := agents[dead.InstanceID].Stats().ConfigLoads; loads != 0 {
		t.Errorf("dead target's real agent saw %d config loads", loads)
	}
}

// TestRolloutJitterSeedDeterministic: with WithJitterSeed the backoff
// sequence is an exact function of the seed, so tests can account for
// sleeps precisely instead of bounding them.
func TestRolloutJitterSeedDeterministic(t *testing.T) {
	mk := func(seed int64) *rolloutOptions {
		opt, err := applyRolloutOptions([]RolloutOption{
			WithBackoff(10*time.Millisecond, time.Second),
			WithJitterSeed(seed),
		})
		if err != nil {
			t.Fatal(err)
		}
		return opt
	}
	a, b, c := mk(7), mk(7), mk(8)
	var sameAsC int
	for k := 0; k < 12; k++ {
		da, db, dc := a.rolloutBackoff(k), b.rolloutBackoff(k), c.rolloutBackoff(k)
		if da != db {
			t.Fatalf("k=%d: same seed diverged: %v vs %v", k, da, db)
		}
		if da == dc {
			sameAsC++
		}
		// Jitter stays within [d/2, 3d/2) of the clamped exponential.
		d := 10 * time.Millisecond << uint(k)
		if d <= 0 || d > time.Second {
			d = time.Second
		}
		if da < d/2 || da >= d/2*3 {
			t.Errorf("k=%d: delay %v outside [%v, %v)", k, da, d/2, d/2*3)
		}
	}
	if sameAsC == 12 {
		t.Error("different seeds produced identical jitter sequences")
	}
}

// TestRolloutBackoffOverflow is the regression for the satellite fix:
// with no configured cap, base << k wrapped negative at large k, the
// clamp guard never fired, and retries tight-looped with zero delay.
func TestRolloutBackoffOverflow(t *testing.T) {
	opt, err := applyRolloutOptions([]RolloutOption{
		WithBackoff(50*time.Millisecond, 0),
		WithJitterSeed(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{40, 62, 63, 64, 100, 1000} {
		d := opt.rolloutBackoff(k)
		if d <= 0 {
			t.Errorf("k=%d: delay %v, want positive (overflow not clamped)", k, d)
		}
		if d > maxRolloutBackoff+maxRolloutBackoff/2 {
			t.Errorf("k=%d: delay %v exceeds jittered clamp", k, d)
		}
	}
	// With a cap, the clamp lands at the cap (jitter aside).
	opt2, err := applyRolloutOptions([]RolloutOption{
		WithBackoff(50*time.Millisecond, 2*time.Second),
		WithJitterSeed(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{40, 63, 100} {
		if d := opt2.rolloutBackoff(k); d <= 0 || d > 3*time.Second {
			t.Errorf("capped k=%d: delay %v outside (0, 3s]", k, d)
		}
	}
}

// TestRolloutOptionValidation: malformed stages and rates are rejected
// up front, before any datagram leaves.
func TestRolloutOptionValidation(t *testing.T) {
	m, err := netsim.Model(netsim.Params{Domains: 1, SystemsPerDomain: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for name, opts := range map[string][]RolloutOption{
		"decreasing stages": {WithStages(0.5, 0.2)},
		"zero stage":        {WithStages(0)},
		"stage above one":   {WithStages(0.5, 1.5)},
		"rate of one":       {WithMaxFailureRate(1)},
	} {
		if _, err := DistributeContext(context.Background(), m, nil, opts...); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

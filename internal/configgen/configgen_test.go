package configgen

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nmsl/internal/consistency"
	"nmsl/internal/mib"
	"nmsl/internal/paperspec"
	"nmsl/internal/parser"
	"nmsl/internal/sema"
	"nmsl/internal/snmp"
)

func buildModel(t *testing.T, src string) *consistency.Model {
	t.Helper()
	f, err := parser.Parse("test", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	a := sema.NewAnalyzer()
	a.AnalyzeFile(f)
	spec, err := a.Finish()
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return consistency.BuildModel(spec)
}

func TestGeneratePaperSpec(t *testing.T) {
	m := buildModel(t, paperspec.Combined)
	configs := Generate(m)
	// Both snmpdReadOnly instances get configurations; the application
	// (snmpaddr) does not.
	if len(configs) != 2 {
		t.Fatalf("configs for %v", keys(configs))
	}
	cfg := configs["snmpdReadOnly@romano.cs.wisc.edu#0"]
	if cfg == nil {
		t.Fatalf("missing romano config; have %v", keys(configs))
	}
	cc := cfg.Communities["public"]
	if cc == nil {
		t.Fatalf("missing public community: %+v", cfg)
	}
	if cc.Access != mib.AccessReadOnly {
		t.Errorf("access %v", cc.Access)
	}
	if cc.MinInterval != 5*time.Minute {
		t.Errorf("interval %v", cc.MinInterval)
	}
	mibOID := m.Spec.MIB.Lookup("mgmt.mib").OID()
	if len(cc.View) != 1 || cc.View[0].Prefix.Compare(mibOID) != 0 {
		t.Errorf("view %v", cc.View)
	}
}

func keys[V any](m map[string]*V) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestDomainRestrictionNarrowsConfig(t *testing.T) {
	src := `
process agent ::=
    supports mgmt.mib;
    exports mgmt.mib to "public" access Any frequency >= 1 minutes;
end process agent.
system "inside" ::=
    cpu sparc;
    interface ie0 net lab type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib;
    process agent;
end system "inside".
domain lab ::=
    system inside;
    exports mgmt.mib.system to "public" access ReadOnly frequency >= 10 minutes;
end domain lab.
domain public ::= domain lab; end domain public.
`
	m := buildModel(t, src)
	configs := Generate(m)
	cfg := configs["agent@inside#0"]
	if cfg == nil {
		t.Fatal("missing config")
	}
	cc := cfg.Communities["public"]
	if cc == nil {
		t.Fatal("public community dropped")
	}
	// The domain narrows Any -> ReadOnly, 60s -> 600s, mgmt.mib -> system.
	if cc.Access != mib.AccessReadOnly {
		t.Errorf("access %v", cc.Access)
	}
	if cc.MinInterval != 10*time.Minute {
		t.Errorf("interval %v", cc.MinInterval)
	}
	sysOID := m.Spec.MIB.Lookup("mgmt.mib.system").OID()
	if len(cc.View) != 1 || cc.View[0].Prefix.Compare(sysOID) != 0 {
		t.Errorf("view %v", cc.View)
	}
}

// TestGenerateMixedAccessDoesNotLeak is the regression test for the
// access-mode merge bug: a grantee holding ReadWrite on one subtree and
// ReadOnly on another used to get one community-wide mode covering both,
// leaking write access onto the ReadOnly export. The generated policy —
// and a live agent running it — must reject a Set on the ReadOnly
// subtree while still accepting one on the writable subtree.
func TestGenerateMixedAccessDoesNotLeak(t *testing.T) {
	src := `
process agent ::=
    supports mgmt.mib;
    exports mgmt.mib.system to "ops" access ReadOnly;
    exports mgmt.mib.ip to "ops" access Any;
end process agent.
system "h" ::=
    cpu sparc;
    interface ie0 net lab type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib;
    process agent;
end system "h".
domain lab ::= system h; end domain lab.
domain ops ::= end domain ops.
`
	m := buildModel(t, src)
	cfg := Generate(m)["agent@h#0"]
	if cfg == nil {
		t.Fatal("missing config")
	}
	cc := cfg.Communities["ops"]
	if cc == nil {
		t.Fatalf("missing ops community: %+v", cfg)
	}
	sysDescr := m.Spec.MIB.Lookup("mgmt.mib.system.sysDescr").OID()
	ttl := m.Spec.MIB.Lookup("mgmt.mib.ip.ipDefaultTTL").OID()
	if cc.Allows(sysDescr, mib.AccessWriteOnly) {
		t.Errorf("write access leaked onto the ReadOnly subtree: %+v", cc.View)
	}
	if !cc.Allows(sysDescr, mib.AccessReadOnly) {
		t.Errorf("ReadOnly subtree lost read access: %+v", cc.View)
	}
	if !cc.Allows(ttl, mib.AccessWriteOnly) || !cc.Allows(ttl, mib.AccessReadOnly) {
		t.Errorf("ReadWrite subtree over-restricted: %+v", cc.View)
	}

	// End to end: a live agent running this config enforces the split.
	store := snmp.NewStore()
	snmp.PopulateFromMIB(store, m.Spec.MIB, "mgmt.mib")
	agent := snmp.NewAgent(store, cfg)
	addr, err := agent.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	client, err := snmp.Dial(addr.String(), "ops")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	err = client.Set(snmp.Binding{OID: sysDescr, Value: snmp.Str("hacked")})
	re, ok := err.(*snmp.RequestError)
	if !ok || re.Status != snmp.ReadOnly {
		t.Fatalf("Set on ReadOnly-exported variable: %v (want ReadOnly error)", err)
	}
	if err := client.Set(snmp.Binding{OID: ttl, Value: snmp.Int64(63)}); err != nil {
		t.Fatalf("Set on ReadWrite-exported variable: %v", err)
	}
	if _, err := client.Get(sysDescr); err != nil {
		t.Fatalf("Get on ReadOnly-exported variable: %v", err)
	}
}

func TestDomainRestrictionDropsUnGrantedCommunity(t *testing.T) {
	src := `
process agent ::=
    supports mgmt.mib;
    exports mgmt.mib to "outsiders" access ReadOnly;
end process agent.
system "inside" ::=
    cpu sparc;
    interface ie0 net lab type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib;
    process agent;
end system "inside".
domain lab ::=
    system inside;
    exports mgmt.mib to "friends" access ReadOnly;
end domain lab.
domain outsiders ::= end domain outsiders.
domain friends ::= end domain friends.
`
	m := buildModel(t, src)
	configs := Generate(m)
	cfg := configs["agent@inside#0"]
	if _, ok := cfg.Communities["outsiders"]; ok {
		t.Errorf("outsiders community should be dropped by lab's restriction: %+v", cfg)
	}
}

func TestSnmpdConfRoundTrip(t *testing.T) {
	cfg := &snmp.Config{
		AdminCommunity: "adm",
		Communities: map[string]*snmp.CommunityConfig{
			"public": {
				Access:      mib.AccessReadOnly,
				View:        []snmp.View{{Prefix: mib.OID{1, 3, 6, 1, 2, 1}}, {Prefix: mib.OID{1, 3, 6, 1, 4}, Access: mib.AccessReadOnly}},
				MinInterval: 300 * time.Second,
			},
			"ops": {
				Access: mib.AccessAny,
				View:   []snmp.View{{Prefix: mib.OID{1, 3, 6}}},
			},
		},
	}
	var buf bytes.Buffer
	if err := WriteSnmpdConf(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	got, err := ParseSnmpdConf(&buf)
	if err != nil {
		t.Fatalf("parse back: %v\n%s", err, buf.String())
	}
	if got.AdminCommunity != "adm" || len(got.Communities) != 2 {
		t.Fatalf("got %+v", got)
	}
	pc := got.Communities["public"]
	if pc.Access != mib.AccessReadOnly || pc.MinInterval != 300*time.Second || len(pc.View) != 2 {
		t.Fatalf("public %+v", pc)
	}
}

func TestParseSnmpdConfErrors(t *testing.T) {
	bad := []string{
		"community a b\n",
		"community a Bogus 5 1.3\n",
		"community a ReadOnly x 1.3\n",
		"community a ReadOnly 5 1.x\n",
		"admin\n",
		"mystery directive\n",
	}
	for _, src := range bad {
		if _, err := ParseSnmpdConf(strings.NewReader(src)); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestCompilerLevelOutputs(t *testing.T) {
	f, err := parser.Parse("paper", paperspec.Combined)
	if err != nil {
		t.Fatal(err)
	}
	a := sema.NewAnalyzer()
	RegisterOutput(a.Tables())
	a.AnalyzeFile(f)
	if _, err := a.Finish(); err != nil {
		t.Fatal(err)
	}
	var barts bytes.Buffer
	if err := a.Generate(TagBartsSnmpd, &barts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(barts.String(), "community public ReadOnly 300 mgmt.mib") {
		t.Fatalf("BartsSnmpd output:\n%s", barts.String())
	}
	var nvp bytes.Buffer
	if err := a.Generate(TagNVP, &nvp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(nvp.String(), `"community":"public"`) {
		t.Fatalf("nvp output:\n%s", nvp.String())
	}
}

func TestInstallFiles(t *testing.T) {
	m := buildModel(t, paperspec.Combined)
	configs := Generate(m)
	dir := t.TempDir()
	paths, err := InstallFiles(dir, TagBartsSnmpd, configs)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths %v", paths)
	}
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "community public") {
		t.Fatalf("file content:\n%s", data)
	}
	// nvp format parses back as JSON config
	jpaths, err := InstallFiles(dir, TagNVP, configs)
	if err != nil {
		t.Fatal(err)
	}
	jdata, err := os.ReadFile(jpaths[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snmp.UnmarshalConfig(bytes.TrimSpace(jdata)); err != nil {
		t.Fatalf("nvp file not loadable: %v", err)
	}
	if _, err := InstallFiles(dir, "weird", configs); err == nil {
		t.Error("unknown format accepted")
	}
	// filenames are sanitized
	if strings.ContainsAny(filepath.Base(paths[0]), "@#") {
		t.Errorf("unsanitized path %s", paths[0])
	}
}

func TestInstallLiveEndToEnd(t *testing.T) {
	// The full prescriptive loop: generate from the paper spec, install
	// into a live agent over UDP, verify the agent now enforces the
	// spec's access and frequency.
	m := buildModel(t, paperspec.Combined)
	configs := Generate(m)
	cfg := configs["snmpdReadOnly@romano.cs.wisc.edu#0"]
	cfg.AdminCommunity = "nmsl-admin"

	store := snmp.NewStore()
	snmp.PopulateFromMIB(store, m.Spec.MIB, "mgmt.mib")
	agent := snmp.NewAgent(store, &snmp.Config{
		Communities:    map[string]*snmp.CommunityConfig{},
		AdminCommunity: "nmsl-admin",
	})
	addr, err := agent.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	if err := InstallLive(addr.String(), "nmsl-admin", cfg); err != nil {
		t.Fatalf("install: %v", err)
	}

	client, err := snmp.Dial(addr.String(), "public")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	oid := m.Spec.MIB.Lookup("mgmt.mib.system.sysDescr").OID()
	if _, err := client.Get(oid); err != nil {
		t.Fatalf("in-spec query rejected: %v", err)
	}
	// Second query violates the 5-minute frequency clause.
	_, err = client.Get(oid)
	re, ok := err.(*snmp.RequestError)
	if !ok || re.Status != snmp.GenErr {
		t.Fatalf("out-of-spec query result: %v", err)
	}
	// Writes are rejected: the spec exported ReadOnly. A fresh agent is
	// used because the rate limiter of the first one already counts the
	// queries above against public's 5-minute window.
	agent2 := snmp.NewAgent(store, &snmp.Config{
		Communities:    map[string]*snmp.CommunityConfig{},
		AdminCommunity: "nmsl-admin",
	})
	addr2, err := agent2.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer agent2.Close()
	if err := InstallLive(addr2.String(), "nmsl-admin", cfg); err != nil {
		t.Fatalf("install: %v", err)
	}
	client2, err := snmp.Dial(addr2.String(), "public")
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()
	err = client2.Set(snmp.Binding{OID: oid, Value: snmp.Str("hacked")})
	re, ok = err.(*snmp.RequestError)
	if !ok || re.Status != snmp.ReadOnly {
		t.Fatalf("write result: %v", err)
	}
}

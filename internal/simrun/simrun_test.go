package simrun

import (
	"strings"
	"testing"
	"time"

	"nmsl/internal/consistency"
	"nmsl/internal/netsim"
	"nmsl/internal/paperspec"
	"nmsl/internal/parser"
	"nmsl/internal/sema"
)

func model(t *testing.T, src string) *consistency.Model {
	t.Helper()
	f, err := parser.Parse("test", src)
	if err != nil {
		t.Fatal(err)
	}
	a := sema.NewAnalyzer()
	a.AnalyzeFile(f)
	spec, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return consistency.BuildModel(spec)
}

func TestPaperSpecSimulatesCleanly(t *testing.T) {
	m := model(t, paperspec.Combined)
	res, err := Run(m, Options{Duration: 24 * time.Hour, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean() {
		t.Fatalf("violations in a consistent spec:\n%s", res)
	}
	if res.Issued == 0 || res.Accepted == 0 {
		t.Fatalf("nothing happened: %s", res)
	}
	// snmpaddr is infrequent (1/hour here): 24h -> ~24 queries per target
	if res.Issued < 40 || res.Issued > 60 {
		t.Fatalf("issued %d, want ~48", res.Issued)
	}
	if !strings.Contains(res.String(), "simulated") {
		t.Errorf("summary: %s", res)
	}
}

func TestGeneratedInternetSimulates(t *testing.T) {
	m, err := netsim.Model(netsim.Params{Domains: 5, SystemsPerDomain: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(m, Options{Duration: 2 * time.Hour, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean() {
		t.Fatalf("violations:\n%s", res)
	}
	// Each poller queries two target instances through the shared
	// "public" community: the second query inside an agent's window may
	// contend, but never violate.
	if res.Accepted == 0 {
		t.Fatalf("no accepted queries: %s", res)
	}
	if res.AgentRequests != res.Issued {
		t.Fatalf("agent requests %d != issued %d", res.AgentRequests, res.Issued)
	}
}

// TestAggregateContention demonstrates the pairwise-vs-aggregate
// subtlety: two pollers in different domains, both covered by the same
// grantee ("public"), each query the agent every 5 minutes — pairwise
// consistent — but share one community budget of >= 5 minutes, so about
// half their queries are rate-limited at runtime.
func TestAggregateContention(t *testing.T) {
	src := `
process agent ::=
    supports mgmt.mib;
    exports mgmt.mib to "public" access ReadOnly frequency >= 5 minutes;
end process agent.
process pollerA ::=
    queries agent requests mgmt.mib.system frequency >= 5 minutes;
end process pollerA.
process pollerB ::=
    queries agent requests mgmt.mib.system frequency >= 5 minutes;
end process pollerB.
system "srv" ::=
    cpu sparc; interface ie0 net lan type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib;
    process agent;
end system "srv".
system "wsA" ::=
    cpu sparc; interface ie0 net lan type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib;
    process pollerA;
end system "wsA".
system "wsB" ::=
    cpu sparc; interface ie0 net lan type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib;
    process pollerB;
end system "wsB".
domain a ::= system srv; system wsA; end domain a.
domain b ::= system wsB; end domain b.
domain public ::= domain a; domain b; end domain public.
`
	m := model(t, src)
	// pairwise consistent
	if rep := consistency.Check(m); !rep.Consistent() {
		t.Fatalf("spec should be pairwise consistent:\n%s", rep)
	}
	res, err := Run(m, Options{Duration: 10 * time.Hour, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean() == false {
		t.Fatalf("contention must not be classified as violation:\n%s", res)
	}
	if res.Contention == 0 {
		t.Fatalf("expected aggregate rate contention:\n%s", res)
	}
	// both pollers still make progress
	for refStr, st := range res.PerRef {
		if st.Accepted == 0 {
			t.Errorf("%s never accepted (issued %d, contended %d)", refStr, st.Issued, st.Contention)
		}
	}
}

// TestMisconfiguredAgentViolates: when the generated config is replaced
// by an empty policy at one agent, the simulation reports violations.
func TestMisconfiguredAgentViolates(t *testing.T) {
	// Flip every export to WriteOnly: the read references then have no
	// granted community and every simulated query is a violation.
	src := strings.ReplaceAll(paperspec.Combined, "access ReadOnly", "access WriteOnly")
	m := model(t, src)
	// the spec is now inconsistent (read refs vs write-only exports), and
	// the simulation shows it behaviourally
	res, err := Run(m, Options{Duration: 4 * time.Hour, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean() {
		t.Fatalf("expected violations:\n%s", res)
	}
}

func TestDeterministicRuns(t *testing.T) {
	m := model(t, paperspec.Combined)
	r1, err := Run(m, Options{Duration: 6 * time.Hour, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(m, Options{Duration: 6 * time.Hour, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Issued != r2.Issued || r1.Accepted != r2.Accepted || r1.Contention != r2.Contention {
		t.Fatalf("non-deterministic: %s vs %s", r1, r2)
	}
}

func TestOptionsDefaults(t *testing.T) {
	m := model(t, paperspec.Combined)
	res, err := Run(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.VirtualDuration != time.Hour {
		t.Fatalf("duration %s", res.VirtualDuration)
	}
}

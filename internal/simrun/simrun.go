// Package simrun executes a specified internet over virtual time: a
// discrete-event simulation in which every reference of the consistency
// model issues queries at its declared frequency against in-process
// agents configured by the configuration generators.
//
// This closes the behavioural loop the paper's two aspects imply: the
// descriptive aspect proves the specification consistent, the
// prescriptive aspect configures the managers, and the simulation shows
// the configured managers interoperating *over time* — days of virtual
// operation in milliseconds of real time, with every query, acceptance,
// refusal and rate rejection accounted for.
//
// The simulation also surfaces a subtlety the paper's pairwise
// consistency model does not capture: permissions are granted to
// *domains*, so several sources under one grantee share the same
// community — and therefore the same rate budget — at an agent. A
// specification can be pairwise consistent while the aggregate arrival
// rate at one agent exceeds its per-community interval, producing rate
// rejections at runtime (reported as Contention, distinct from
// Violations). See EXPERIMENTS.md E-SIM.
package simrun

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"nmsl/internal/configgen"
	"nmsl/internal/consistency"
	"nmsl/internal/snmp"
)

// Options configure a run.
type Options struct {
	// Duration is the virtual time to simulate. Zero selects one hour.
	Duration time.Duration
	// InfrequentPeriod is the issue period for "infrequent" references.
	// Zero selects one hour.
	InfrequentPeriod time.Duration
	// DefaultPeriod is the issue period for references with no frequency
	// clause. Zero selects one minute.
	DefaultPeriod time.Duration
	// JitterFrac randomizes each inter-query gap by up to this fraction
	// of the period, modelling client clock drift. Without it,
	// equal-period pollers sharing a community budget phase-lock and one
	// starves forever. Zero selects 0.05; negative disables jitter.
	JitterFrac float64
	// Seed jitters reference start offsets deterministically.
	Seed int64
}

func (o *Options) fill() {
	if o.Duration == 0 {
		o.Duration = time.Hour
	}
	if o.InfrequentPeriod == 0 {
		o.InfrequentPeriod = time.Hour
	}
	if o.DefaultPeriod == 0 {
		o.DefaultPeriod = time.Minute
	}
	if o.JitterFrac == 0 {
		o.JitterFrac = 0.05
	}
	if o.JitterFrac < 0 {
		o.JitterFrac = 0
	}
}

// RefStats accumulates per-reference outcomes.
type RefStats struct {
	Issued     int64
	Accepted   int64
	Contention int64 // rate-limited (shared-community budget)
	Violations int64 // refused or dropped although the spec permits
}

// Result is the outcome of a simulation.
type Result struct {
	VirtualDuration time.Duration
	// Totals across all references.
	Issued, Accepted, Contention, Violations int64
	// PerRef keyed by the reference's String().
	PerRef map[string]*RefStats
	// ViolationDetails describes the first few violations observed.
	ViolationDetails []string
	// AgentRequests is the total requests observed by the agents.
	AgentRequests int64
}

// Clean reports whether no violations occurred.
func (r *Result) Clean() bool { return r.Violations == 0 }

// String renders a summary.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "simulated %s of operation: %d queries issued, %d accepted, %d rate-contended, %d violations\n",
		r.VirtualDuration, r.Issued, r.Accepted, r.Contention, r.Violations)
	for _, d := range r.ViolationDetails {
		fmt.Fprintf(&b, "  VIOLATION: %s\n", d)
	}
	return b.String()
}

// event is one pending query issue.
type event struct {
	at  time.Duration
	ref int
}

type eventHeap []event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// refPeriod returns how often the reference issues queries.
func refPeriod(ref *consistency.Ref, opts *Options) time.Duration {
	t, _, infreq := refGuarantee(ref)
	switch {
	case infreq:
		return opts.InfrequentPeriod
	case t > 0:
		return time.Duration(t * float64(time.Second))
	default:
		return opts.DefaultPeriod
	}
}

// refGuarantee mirrors the model's internal guarantee extraction using
// only exported fields.
func refGuarantee(ref *consistency.Ref) (seconds float64, strict, infrequent bool) {
	if ref.Freq.Infrequent {
		return 0, false, true
	}
	return ref.Freq.MinPeriodSeconds(), ref.Freq.Op == ">", false
}

// Run simulates the model for the configured virtual duration. Agents
// are created in-process, configured through the configuration
// generators, and driven through their wire-message handler on a shared
// virtual clock.
func Run(m *consistency.Model, opts Options) (*Result, error) {
	opts.fill()
	rng := rand.New(rand.NewSource(opts.Seed))

	// Virtual clock shared by the harness and every agent.
	var now time.Duration
	epoch := time.Unix(1_000_000, 0)
	clock := func() time.Time { return epoch.Add(now) }

	// One in-process agent per agent instance, configured per spec.
	configs := configgen.Generate(m)
	agents := map[string]*snmp.Agent{}
	for id, cfg := range configs {
		store := snmp.NewStore()
		snmp.PopulateFromMIB(store, m.Spec.MIB, "mgmt.mib")
		agent := snmp.NewAgent(store, cfg)
		agent.SetTimeSource(clock)
		agents[id] = agent
	}

	res := &Result{VirtualDuration: opts.Duration, PerRef: map[string]*RefStats{}}

	// Precompute per-reference state; skip references whose target runs
	// no agent here (e.g. application targets).
	type refState struct {
		ref       *consistency.Ref
		agent     *snmp.Agent
		community string
		period    time.Duration
		reqID     int32
	}
	var states []refState
	for i := range m.Refs {
		ref := &m.Refs[i]
		agent := agents[ref.Target.ID]
		if agent == nil {
			continue
		}
		states = append(states, refState{
			ref:       ref,
			agent:     agent,
			community: m.GrantedCommunity(ref),
			period:    refPeriod(ref, &opts),
		})
		res.PerRef[ref.String()] = &RefStats{}
	}
	// deterministic order
	sort.Slice(states, func(a, b int) bool { return states[a].ref.String() < states[b].ref.String() })

	h := &eventHeap{}
	for i, st := range states {
		offset := time.Duration(rng.Int63n(int64(st.period) + 1))
		heap.Push(h, event{at: offset, ref: i})
	}

	issue := func(st *refState) (accepted bool) {
		st.reqID++
		stats := res.PerRef[st.ref.String()]
		stats.Issued++
		res.Issued++
		if st.community == "" {
			stats.Violations++
			res.Violations++
			res.note(fmt.Sprintf("%s: no granted community", st.ref))
			return false
		}
		req := &snmp.Message{
			Version:   snmp.Version0,
			Community: st.community,
			PDU: snmp.PDU{
				Type:      snmp.TagGetNextRequest,
				RequestID: st.reqID,
				Bindings:  []snmp.Binding{{OID: st.ref.Var.OID(), Value: snmp.Null()}},
			},
		}
		resp := st.agent.Handle(req)
		switch {
		case resp == nil:
			stats.Violations++
			res.Violations++
			res.note(fmt.Sprintf("%s: dropped (community %q unknown to agent)", st.ref, st.community))
			return false
		case resp.PDU.ErrorStatus == snmp.NoError:
			stats.Accepted++
			res.Accepted++
			return true
		case resp.PDU.ErrorStatus == snmp.GenErr:
			// rate-limited: the shared community budget was consumed
			stats.Contention++
			res.Contention++
			return false
		default:
			stats.Violations++
			res.Violations++
			res.note(fmt.Sprintf("%s: refused with %s", st.ref, resp.PDU.ErrorStatus))
			return false
		}
	}

	for h.Len() > 0 {
		e := heap.Pop(h).(event)
		if e.at > opts.Duration {
			break
		}
		now = e.at
		st := &states[e.ref]
		issue(st)
		next := st.period
		if opts.JitterFrac > 0 {
			j := int64(float64(st.period) * opts.JitterFrac)
			next += time.Duration(rng.Int63n(2*j+1) - j)
		}
		heap.Push(h, event{at: e.at + next, ref: e.ref})
	}

	for _, agent := range agents {
		res.AgentRequests += agent.Stats().Requests
	}
	return res, nil
}

func (r *Result) note(msg string) {
	if len(r.ViolationDetails) < 8 {
		r.ViolationDetails = append(r.ViolationDetails, msg)
	}
}

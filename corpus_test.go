package nmsl

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nmsl/internal/consistency"
)

// corpusCase describes the expected verdict of one testdata
// specification.
type corpusCase struct {
	file       string
	consistent bool
	// ext names an NMSL/EXT file to install before compiling.
	ext string
	// kinds are the violation kinds an inconsistent case must include.
	kinds []consistency.Kind
	// simulate runs a 6h virtual simulation on consistent cases.
	simulate bool
	// noFormat skips the round-trip check (extension clauses are not in
	// the typed model, so the canonical printer cannot re-emit them).
	noFormat bool
}

var corpus = []corpusCase{
	{file: "isp.nmsl", consistent: true, simulate: true},
	{file: "types.nmsl", consistent: true},
	{file: "campus-broken.nmsl", consistent: false, kinds: []consistency.Kind{
		KindFrequencyViolation, KindDomainRestriction, KindNoPermission,
	}},
	{file: "machineroom.nmsl", ext: "proxy.nmslext", consistent: true, simulate: true, noFormat: true},
}

// TestCorpus compiles every testdata specification, checks the expected
// verdict with both checkers, round-trips the canonical form, and
// simulates the consistent ones.
func TestCorpus(t *testing.T) {
	for _, tc := range corpus {
		t.Run(tc.file, func(t *testing.T) {
			path := filepath.Join("testdata", tc.file)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			c := NewCompiler()
			if tc.ext != "" {
				extData, err := os.ReadFile(filepath.Join("testdata", tc.ext))
				if err != nil {
					t.Fatal(err)
				}
				if err := c.AddExtensionSource(tc.ext, string(extData)); err != nil {
					t.Fatalf("extension: %v", err)
				}
			}
			if err := c.CompileSource(path, string(data)); err != nil {
				t.Fatalf("compile: %v", err)
			}
			spec, err := c.Finish()
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}

			rep := spec.Check()
			if rep.Consistent() != tc.consistent {
				t.Fatalf("consistency = %v, want %v:\n%s", rep.Consistent(), tc.consistent, rep)
			}
			for _, k := range tc.kinds {
				if len(rep.ByKind(k)) == 0 {
					t.Errorf("expected a %s violation:\n%s", k, rep)
				}
			}

			// the logic engine must agree
			rep2 := spec.CheckLogic()
			if rep2.Consistent() != tc.consistent || len(rep2.Violations) != len(rep.Violations) {
				t.Fatalf("logic checker disagrees: %d vs %d violations", len(rep2.Violations), len(rep.Violations))
			}

			// canonical form reparses to the same verdict
			if !tc.noFormat {
				var buf strings.Builder
				if err := spec.Format(&buf); err != nil {
					t.Fatal(err)
				}
				c2 := NewCompiler()
				if err := c2.CompileSource(path+".formatted", buf.String()); err != nil {
					t.Fatalf("formatted source does not compile: %v", err)
				}
				spec2, err := c2.Finish()
				if err != nil {
					t.Fatalf("formatted source does not analyze: %v", err)
				}
				rep3 := spec2.Check()
				if rep3.Consistent() != tc.consistent || len(rep3.Violations) != len(rep.Violations) {
					t.Fatalf("round trip changed verdict: %d vs %d violations", len(rep3.Violations), len(rep.Violations))
				}
			}

			if tc.consistent && tc.simulate {
				res, err := spec.Simulate(SimOptions{Duration: 6 * 3600e9, Seed: 5})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Clean() {
					t.Fatalf("simulation violations:\n%s", res)
				}
			}
		})
	}
}

// TestCorpusISPStructure spot-checks the richest corpus entry.
func TestCorpusISPStructure(t *testing.T) {
	data, err := os.ReadFile("testdata/isp.nmsl")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCompiler()
	if err := c.CompileSource("isp", string(data)); err != nil {
		t.Fatal(err)
	}
	spec, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m := spec.Model()
	if len(m.Instances) != 5 {
		t.Errorf("instances %d", len(m.Instances))
	}
	// nocPoller: routerAgent x2 targets x2 vars + customerAgent x1 x2 vars
	// acmeOps: gw.acme.com agent x1 x1 var
	if len(m.Refs) != 7 {
		t.Errorf("refs %d", len(m.Refs))
	}
	configs := spec.AgentConfigs()
	// three agent instances get configurations
	if len(configs) != 3 {
		t.Errorf("configs %d", len(configs))
	}
	cust := configs["customerAgent@gw.acme.com#0"]
	if cust == nil {
		t.Fatalf("missing customer config; have %v", keysOf(configs))
	}
	// the acme domain's restriction keeps both communities but the isp
	// one is clipped to system+interfaces
	if cust.Communities["isp"] == nil || cust.Communities["acme"] == nil {
		t.Fatalf("communities: %+v", cust.Communities)
	}
	if len(cust.Communities["isp"].View) != 2 {
		t.Errorf("isp view: %v", cust.Communities["isp"].View)
	}
}

func keysOf[V any](m map[string]*V) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

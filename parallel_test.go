package nmsl

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"nmsl/internal/consistency"
	"nmsl/internal/netsim"
)

// compileCorpus compiles one testdata specification (with its extension,
// if any) through the public facade.
func compileCorpus(t *testing.T, tc corpusCase) *Specification {
	t.Helper()
	c := NewCompiler()
	if tc.ext != "" {
		extData, err := os.ReadFile(filepath.Join("testdata", tc.ext))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AddExtensionSource(tc.ext, string(extData)); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(filepath.Join("testdata", tc.file))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CompileSource(tc.file, string(data)); err != nil {
		t.Fatal(err)
	}
	spec, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestParallelParityCorpus asserts that CheckContext produces a Report
// byte-identical to the serial checkers at workers 1, 2, 4 and 8 across
// the whole testdata corpus, for both engines.
func TestParallelParityCorpus(t *testing.T) {
	for _, tc := range corpus {
		t.Run(tc.file, func(t *testing.T) {
			spec := compileCorpus(t, tc)
			serial := spec.Check().String()
			serialLogic := spec.CheckLogic().String()
			for _, w := range []int{1, 2, 4, 8} {
				rep, err := spec.CheckContext(context.Background(), WithWorkers(w))
				if err != nil {
					t.Fatal(err)
				}
				if rep.String() != serial {
					t.Errorf("workers=%d diverges from serial:\n%s\nvs\n%s", w, rep, serial)
				}
				lrep, err := spec.CheckContext(context.Background(),
					WithWorkers(w), WithEngine(EngineLogic))
				if err != nil {
					t.Fatal(err)
				}
				if lrep.String() != serialLogic {
					t.Errorf("workers=%d logic engine diverges:\n%s\nvs\n%s", w, lrep, serialLogic)
				}
			}
		})
	}
}

// TestParallelParityNetsim asserts serial/parallel parity on a
// netsim-generated 1000-domain internet with injected inconsistencies
// (so the merge path carries real violations).
func TestParallelParityNetsim(t *testing.T) {
	m, err := netsim.Model(netsim.Params{
		Domains: 1000, SystemsPerDomain: 2, NestingDepth: 1,
		InconsistencyRate: 0.02, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	serial := consistency.Check(m)
	if serial.Consistent() {
		t.Fatal("expected injected violations")
	}
	for _, w := range []int{1, 2, 4, 8} {
		rep, err := consistency.CheckContext(context.Background(), m, consistency.Options{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if rep.String() != serial.String() {
			t.Fatalf("workers=%d diverges from serial on the 1k-domain internet", w)
		}
	}
}

// TestParallelParityNetsimLogic asserts serial/parallel parity for the
// logic engine on a netsim internet with injected inconsistencies. The
// model is kept small (the resolution engine is ~100x the indexed
// checker per ref) but large enough to cut multiple shards per worker,
// so the merge path is exercised with real violations.
func TestParallelParityNetsimLogic(t *testing.T) {
	m, err := netsim.Model(netsim.Params{
		Domains: 40, SystemsPerDomain: 2, NestingDepth: 1,
		InconsistencyRate: 0.1, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	serial := consistency.CheckLogic(m)
	if serial.Consistent() {
		t.Fatal("expected injected violations")
	}
	for _, w := range []int{1, 2, 4, 8} {
		rep, err := consistency.CheckContext(context.Background(), m, consistency.Options{
			Workers: w, Engine: consistency.EngineLogic,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.String() != serial.String() {
			t.Fatalf("workers=%d logic engine diverges from serial on the netsim internet", w)
		}
	}
}

// TestParallelSpeedup pins the contention fix: with observability
// enabled (the default registry and whatever sinks are installed),
// an 8-worker check of the 1k-domain internet must not be slower than
// a 1-worker check beyond measurement noise. Before the fix, workers
// serialized on the result-cache mutex and the span sink, and 8 workers
// ran *slower* than 1. The bound is deliberately loose (1.2x) so the
// test stays robust on loaded CI machines; the >= 3x speedup target is
// enforced by bench-guard, not here. Skipped on boxes with fewer than
// 4 CPUs, where there is no parallelism to measure.
func TestParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test; skipped in -short mode")
	}
	if n := runtime.NumCPU(); n < 4 {
		t.Skipf("need >= 4 CPUs to measure parallel speedup, have %d", n)
	}
	m, err := netsim.Model(netsim.Params{Domains: 1000, SystemsPerDomain: 2, NestingDepth: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Warm up once so model-level memoization (closures, columns) is
	// built outside the timed region for both arms.
	if rep := consistency.Check(m); !rep.Consistent() {
		t.Fatal("unexpected inconsistency")
	}
	timeCheck := func(workers int) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			rep, err := consistency.CheckContext(context.Background(), m,
				consistency.Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Consistent() {
				t.Fatal("unexpected inconsistency")
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	t1 := timeCheck(1)
	t8 := timeCheck(8)
	t.Logf("1 worker: %v, 8 workers: %v (%.2fx)", t1, t8, float64(t1)/float64(t8))
	if float64(t8) > 1.2*float64(t1) {
		t.Errorf("8 workers took %v, more than 1.2x the 1-worker %v: the hot path is contending again", t8, t1)
	}
}

// TestCheckContextCancelMidCheck cancels from inside the violation
// stream and expects the check to stop early with ctx.Err().
func TestCheckContextCancelMidCheck(t *testing.T) {
	m, err := netsim.Model(netsim.Params{
		Domains: 500, SystemsPerDomain: 2, InconsistencyRate: 1.0, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := len(consistency.Check(m).Violations)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	seen := 0
	rep, cerr := consistency.CheckContext(ctx, m, consistency.Options{
		Workers: 2,
		OnViolation: func(consistency.Violation) {
			mu.Lock()
			seen++
			mu.Unlock()
			cancel()
		},
	})
	if !errors.Is(cerr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", cerr)
	}
	if seen == 0 || len(rep.Violations) == 0 {
		t.Fatal("cancel arrived before any violation streamed")
	}
	if rep.RefsChecked >= len(m.Refs) {
		t.Errorf("cancelled check still scanned all %d refs", rep.RefsChecked)
	}
	_ = total
}

// TestCheckContextFacadeOptions exercises the functional options
// end-to-end through the public API.
func TestCheckContextFacadeOptions(t *testing.T) {
	spec := compileCorpus(t, corpusCase{file: "campus-broken.nmsl"})
	var streamed []Violation
	rep, err := spec.CheckContext(context.Background(),
		WithWorkers(4),
		WithOnViolation(func(v Violation) { streamed = append(streamed, v) }))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Consistent() || len(streamed) != len(rep.Violations) {
		t.Fatalf("streamed %d of %d violations", len(streamed), len(rep.Violations))
	}
	ff, err := spec.CheckContext(context.Background(), WithFailFast())
	if err != nil {
		t.Fatal(err)
	}
	if ff.Consistent() {
		t.Fatal("fail-fast missed the violations")
	}
}

// TestCompilerSealedAfterFinish: satellite hardening — a finished
// Compiler rejects further sources instead of silently mutating the
// analyzer.
func TestCompilerSealedAfterFinish(t *testing.T) {
	c := NewCompiler()
	if err := c.CompileSource("ok.nmsl", "domain d ::= end domain d."); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := c.CompileSource("late.nmsl", "domain e ::= end domain e."); !errors.Is(err, ErrFinished) {
		t.Errorf("CompileSource after Finish: %v", err)
	}
	if err := c.CompileFile("testdata/isp.nmsl"); !errors.Is(err, ErrFinished) {
		t.Errorf("CompileFile after Finish: %v", err)
	}
	if err := c.AddExtensionSource("x", ""); !errors.Is(err, ErrFinished) {
		t.Errorf("AddExtensionSource after Finish: %v", err)
	}
	if _, err := c.Finish(); !errors.Is(err, ErrFinished) {
		t.Errorf("second Finish: %v", err)
	}
}

// TestTypedErrors: satellite API redesign — sentinel errors are
// matchable with errors.Is across the speculative and audit entry
// points.
func TestTypedErrors(t *testing.T) {
	spec := compileCorpus(t, corpusCase{file: "isp.nmsl"})
	if _, err := spec.AdmissiblePeriods("a", "b", "no.such.var", AccessReadOnly); !errors.Is(err, ErrUnresolvedName) {
		t.Errorf("bad var: %v", err)
	}
	if _, err := spec.AdmissiblePeriods("nope", "b", "mgmt.mib.system", AccessReadOnly); !errors.Is(err, ErrUnknownInstance) {
		t.Errorf("bad source: %v", err)
	}
	if _, err := spec.AuditAgent("nope", "127.0.0.1:1", AuditOptions{}); !errors.Is(err, ErrUnknownInstance) {
		t.Errorf("audit unknown instance: %v", err)
	}
	if _, err := spec.Interop(map[string]string{"nope": "127.0.0.1:1"}, AuditOptions{}); !errors.Is(err, ErrUnknownInstance) {
		t.Errorf("interop unknown instance: %v", err)
	}
}

// benchheap profiles allocation volume (-alloc_space) on the checking
// hot paths. It runs a cold full check, a cache-warming pass and a loop
// of warm delta re-checks over a netsim-generated internet with the
// heap profiler's sampling rate raised, prints the top allocating call
// sites, and writes the full profile in pprof format for offline
// inspection (`go tool pprof -alloc_space heap.pb.gz`).
//
// This is the measurement harness behind the per-worker arena work
// (DESIGN.md, "Memory at §1 scale"): the steady-state per-reference
// path — candidate-permission scratch, violation staging, delta dirty
// sets, cache keys — must allocate nothing, so every site this tool
// reports inside checkRef/checkRefCached/CheckDelta is a regression.
// Model construction and the first cold check legitimately allocate;
// the warm-loop phase is the one to read.
//
// Usage:
//
//	go run ./scripts/benchheap -domains 1000 -warm 50 -out heap.pb.gz
//
// The tool always exits 0; it measures, it does not gate (the exact
// zero-alloc gates are TestCheckSteadyStateZeroAlloc and benchguard's
// allocs/op comparison). Wire the output file into CI artifacts so any
// PR can be diffed against the previous run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"

	"nmsl/internal/consistency"
	"nmsl/internal/netsim"
)

// site is one allocating call site aggregated from the heap records.
type site struct {
	frames []string
	objects int64 // sampled allocated objects (alloc_objects)
	bytes   int64 // sampled allocated bytes (alloc_space)
}

// summarize folds raw heap-profile records by their innermost
// non-runtime frame and returns the sites sorted by allocated bytes.
func summarize(records []runtime.MemProfileRecord, top int) []site {
	bySite := map[string]*site{}
	for i := range records {
		r := &records[i]
		frames := symbolize(r.Stack())
		key := "unknown"
		if len(frames) > 0 {
			key = frames[0]
		}
		s, ok := bySite[key]
		if !ok {
			s = &site{frames: frames}
			bySite[key] = s
		}
		s.objects += r.AllocObjects
		s.bytes += r.AllocBytes
	}
	out := make([]site, 0, len(bySite))
	for _, s := range bySite {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].bytes > out[j].bytes })
	if top > 0 && len(out) > top {
		out = out[:top]
	}
	return out
}

// symbolize resolves a profile stack to function names, skipping the
// allocator's own plumbing so the first frame names the caller that
// actually allocated.
func symbolize(stack []uintptr) []string {
	var frames []string
	cf := runtime.CallersFrames(stack)
	for {
		f, more := cf.Next()
		if f.Function != "" && !isAllocInternal(f.Function) {
			frames = append(frames, f.Function)
		}
		if !more {
			break
		}
	}
	return frames
}

func isAllocInternal(fn string) bool {
	switch fn {
	case "runtime.mallocgc", "runtime.makeslice", "runtime.newobject",
		"runtime.growslice", "runtime.makemap", "runtime.mapassign":
		return true
	}
	return false
}

func main() {
	domains := flag.Int("domains", 1000, "netsim internet size in domains")
	warm := flag.Int("warm", 50, "warm delta re-checks to run after the cold check")
	rate := flag.Int("rate", 4096, "heap profile sampling rate in bytes (lower = finer)")
	out := flag.String("out", "heap.pb.gz", "pprof heap profile output path (empty to skip)")
	top := flag.Int("top", 12, "allocating sites to print")
	flag.Parse()

	runtime.MemProfileRate = *rate

	m, err := netsim.Model(netsim.Params{
		Domains: *domains, SystemsPerDomain: 2, NestingDepth: 1, Seed: 1,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchheap: %v\n", err)
		os.Exit(1)
	}

	// Cold check + cache fill: the legitimate allocation phase.
	chk := consistency.NewChecker(m)
	chk.Cache = consistency.NewResultCache()
	prev := chk.Check()
	if !prev.Consistent() {
		fmt.Fprintln(os.Stderr, "benchheap: model unexpectedly inconsistent")
		os.Exit(1)
	}

	// Warm loop: the phase whose sites must be near-silent.
	delta := &consistency.ModelDelta{Instances: []string{m.Refs[0].Source.ID}}
	for i := 0; i < *warm; i++ {
		if rep := chk.CheckDelta(prev, delta); !rep.Consistent() {
			fmt.Fprintln(os.Stderr, "benchheap: warm delta unexpectedly inconsistent")
			os.Exit(1)
		}
	}

	// Snapshot the records before the reporting machinery below
	// allocates on its own behalf.
	var records []runtime.MemProfileRecord
	for {
		n, ok := runtime.MemProfile(records, true)
		if ok {
			records = records[:n]
			break
		}
		records = make([]runtime.MemProfileRecord, n+50)
	}

	fmt.Printf("benchheap: %d domains, 1 cold check + %d warm deltas, %d allocating sites sampled (rate %dB)\n",
		*domains, *warm, len(records), *rate)
	for i, s := range summarize(records, *top) {
		fmt.Printf("#%d  %d objects, %d bytes\n", i+1, s.objects, s.bytes)
		for j, f := range s.frames {
			if j >= 4 {
				break
			}
			fmt.Printf("      %s\n", f)
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchheap: %v\n", err)
			os.Exit(1)
		}
		runtime.GC() // flush the most recent allocations into the profile
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintf(os.Stderr, "benchheap: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "benchheap: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("profile written to %s (inspect with `go tool pprof -alloc_space %s`)\n", *out, *out)
	}
}

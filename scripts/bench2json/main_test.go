package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	const in = `goos: linux
goarch: amd64
pkg: nmsl
cpu: Example CPU @ 2.00GHz
BenchmarkCheckParallel8-16    	      90	  13210450 ns/op	    1734 B/op	      21 allocs/op
BenchmarkDistributeSerial     	    1000	    701234 ns/op
PASS
ok  	nmsl	3.456s
`
	doc, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Pkg != "nmsl" {
		t.Errorf("header: %+v", doc)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("benchmarks: %+v", doc.Benchmarks)
	}
	b := doc.Benchmarks[0]
	if b.Name != "CheckParallel8" || b.Procs != 16 || b.Iterations != 90 ||
		b.NsPerOp != 13210450 || b.BytesPerOp != 1734 || b.AllocsPerOp != 21 {
		t.Errorf("first: %+v", b)
	}
	if doc.Benchmarks[1].Name != "DistributeSerial" || doc.Benchmarks[1].Procs != 0 {
		t.Errorf("second: %+v", doc.Benchmarks[1])
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := parse(bufio.NewScanner(strings.NewReader("BenchmarkBroken notanumber ns/op\n"))); err == nil {
		t.Fatal("want error")
	}
}

// bench2json converts `go test -bench` text output (stdin) into a
// stable JSON document (stdout) suitable for archiving as a CI
// artifact and diffing across runs.
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' . | go run ./scripts/bench2json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one result line, e.g.
//
//	BenchmarkCheckParallel8-16    90    13210450 ns/op    1734 B/op    21 allocs/op
type Benchmark struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
}

// Document is the whole run: the platform header go test prints plus
// every benchmark line, in order.
type Document struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench2json: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "bench2json: %v\n", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Document, error) {
	doc := &Document{Benchmarks: []Benchmark{}}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line)
			if err != nil {
				return nil, fmt.Errorf("%q: %w", line, err)
			}
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	return doc, sc.Err()
}

func parseLine(line string) (Benchmark, error) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return Benchmark{}, fmt.Errorf("want at least name and iterations")
	}
	b := Benchmark{Name: strings.TrimPrefix(f[0], "Benchmark")}
	// The trailing -N is GOMAXPROCS, not part of the name.
	if i := strings.LastIndex(b.Name, "-"); i >= 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("iterations: %w", err)
	}
	b.Iterations = iters
	// The rest is value/unit pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("value %q: %w", f[i], err)
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		case "MB/s":
			b.MBPerSec = v
		}
	}
	return b, nil
}

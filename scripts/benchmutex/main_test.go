package main

import (
	"runtime"
	"sync"
	"testing"
)

// TestSummarizeRealContention drives two goroutines through a genuinely
// contended mutex with profiling at fraction 1 and asserts the summary
// surfaces at least one site with positive delay. Using real records
// (rather than hand-built ones) keeps the test honest about the
// BlockProfileRecord layout across Go versions.
func TestSummarizeRealContention(t *testing.T) {
	prev := runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(prev)

	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				mu.Lock()
				for j := 0; j < 100; j++ {
					_ = j * j
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	var records []runtime.BlockProfileRecord
	for {
		n, ok := runtime.MutexProfile(records)
		if ok {
			records = records[:n]
			break
		}
		records = make([]runtime.BlockProfileRecord, n+50)
	}
	if len(records) == 0 {
		t.Skip("runtime sampled no contention (single-CPU scheduling can serialize the goroutines)")
	}
	sites := summarize(records, 5)
	if len(sites) == 0 {
		t.Fatal("summarize dropped every record")
	}
	if sites[0].cycles <= 0 && sites[0].count <= 0 {
		t.Fatalf("top site has no delay: %+v", sites[0])
	}
	if len(sites[0].frames) == 0 {
		t.Fatal("top site has no symbolized frames")
	}
}

// TestSummarizeTopLimit checks the top-N truncation.
func TestSummarizeTopLimit(t *testing.T) {
	recs := []runtime.BlockProfileRecord{}
	if got := summarize(recs, 3); len(got) != 0 {
		t.Fatalf("empty input produced %d sites", len(got))
	}
}

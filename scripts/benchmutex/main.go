// benchmutex profiles mutex contention on the parallel consistency-
// checking hot path. It switches on the runtime's mutex profiler
// (runtime.SetMutexProfileFraction), runs repeated parallel checks of a
// netsim-generated internet, then reports the most-contended call sites
// and writes the full profile in pprof format for offline inspection
// (`go tool pprof mutex.pb.gz`).
//
// This is the measurement harness behind the contention fix of the
// sharded checker (DESIGN.md, "Concurrency and contention"). Before the
// fix, an 8-worker run over the 1k-domain internet showed nearly every
// sampled wait inside ResultCache.lookup / ResultCache.store (workers
// serializing on one cache mutex) and obs.(*Registry) counter updates
// per reference. After striping the cache, batching hit/miss counters
// per worker and merging observability per shard, the remaining waits
// sit in the shard fan-out channel and the final report merge — both
// once-per-shard, not once-per-reference.
//
// Usage:
//
//	go run ./scripts/benchmutex -domains 1000 -workers 8 -iters 10 -out mutex.pb.gz
//
// The tool always exits 0; it measures, it does not gate. Wire the
// output file into CI artifacts so any PR can be diffed against the
// previous run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"

	"nmsl/internal/consistency"
	"nmsl/internal/netsim"
)

// site is one contended call site aggregated from the profile records.
type site struct {
	frames []string
	count  int64 // number of sampled waits
	cycles int64 // total sampled delay, in runtime cycle units
}

// summarize folds raw mutex-profile records by their innermost
// non-runtime frame and returns the sites sorted by total delay.
func summarize(records []runtime.BlockProfileRecord, top int) []site {
	bySite := map[string]*site{}
	for _, r := range records {
		frames := symbolize(r.Stack())
		key := "unknown"
		if len(frames) > 0 {
			key = frames[0]
		}
		s, ok := bySite[key]
		if !ok {
			s = &site{frames: frames}
			bySite[key] = s
		}
		s.count += r.Count
		s.cycles += r.Cycles
	}
	out := make([]site, 0, len(bySite))
	for _, s := range bySite {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].cycles > out[j].cycles })
	if top > 0 && len(out) > top {
		out = out[:top]
	}
	return out
}

// symbolize resolves a profile stack to function names, skipping the
// runtime's own lock plumbing so the first frame names the caller that
// actually contended.
func symbolize(stack []uintptr) []string {
	var frames []string
	cf := runtime.CallersFrames(stack)
	for {
		f, more := cf.Next()
		if f.Function != "" && !isLockInternal(f.Function) {
			frames = append(frames, f.Function)
		}
		if !more {
			break
		}
	}
	return frames
}

func isLockInternal(fn string) bool {
	switch fn {
	case "sync.(*Mutex).Unlock", "sync.(*RWMutex).Unlock",
		"sync.(*RWMutex).RUnlock", "runtime.unlock":
		return true
	}
	return false
}

func main() {
	domains := flag.Int("domains", 1000, "netsim internet size in domains")
	workers := flag.Int("workers", 8, "parallel check workers")
	iters := flag.Int("iters", 10, "number of full checks to run under the profiler")
	fraction := flag.Int("fraction", 1, "mutex profile sampling fraction (1 = every contended event)")
	out := flag.String("out", "mutex.pb.gz", "pprof mutex profile output path (empty to skip)")
	top := flag.Int("top", 10, "contended sites to print")
	flag.Parse()

	m, err := netsim.Model(netsim.Params{
		Domains: *domains, SystemsPerDomain: 2, NestingDepth: 1, Seed: 1,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchmutex: %v\n", err)
		os.Exit(1)
	}
	// One unprofiled warm-up check so per-model memoization (transitive
	// closures, columnar tables) is built outside the measured region.
	if rep := consistency.Check(m); !rep.Consistent() {
		fmt.Fprintln(os.Stderr, "benchmutex: model unexpectedly inconsistent")
		os.Exit(1)
	}

	runtime.SetMutexProfileFraction(*fraction)
	defer runtime.SetMutexProfileFraction(0)
	for i := 0; i < *iters; i++ {
		if _, err := consistency.CheckContext(context.Background(), m,
			consistency.Options{Workers: *workers}); err != nil {
			fmt.Fprintf(os.Stderr, "benchmutex: %v\n", err)
			os.Exit(1)
		}
	}

	// Snapshot the records before any more machinery (file I/O below)
	// can contend.
	var records []runtime.BlockProfileRecord
	for {
		n, ok := runtime.MutexProfile(records)
		if ok {
			records = records[:n]
			break
		}
		records = make([]runtime.BlockProfileRecord, n+50)
	}

	fmt.Printf("benchmutex: %d domains, %d workers, %d checks, %d contended sites sampled\n",
		*domains, *workers, *iters, len(records))
	sites := summarize(records, *top)
	if len(sites) == 0 {
		fmt.Println("no mutex contention sampled on the check path")
	}
	for i, s := range sites {
		fmt.Printf("#%d  %d waits, %d cycles delay\n", i+1, s.count, s.cycles)
		for j, f := range s.frames {
			if j >= 4 {
				break
			}
			fmt.Printf("      %s\n", f)
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchmutex: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.Lookup("mutex").WriteTo(f, 0); err != nil {
			fmt.Fprintf(os.Stderr, "benchmutex: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "benchmutex: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("profile written to %s (inspect with `go tool pprof %s`)\n", *out, *out)
	}
}

// slogate is the CI latency SLO gate: it reads the BENCH_svc.json
// written by nmslload and fails when the measured warm delta-check
// latency or throughput breaks budget.
//
// Usage:
//
//	slogate [-in BENCH_svc.json] [-max-warm-p99 d] [-min-checks-per-sec n]
//
// The defaults are deliberately loose — an order of magnitude above
// the measured numbers on the development machine — so the gate
// catches a real regression (an accidental cold path, a lock added to
// the warm loop) rather than scheduler noise on shared CI runners.
//
// Exit status: 0 within budget, 1 over budget or load-run errors,
// 2 usage/read errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"nmsl/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("slogate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "BENCH_svc.json", "load result to gate on")
	maxP99 := fs.Duration("max-warm-p99", 250*time.Millisecond, "warm delta-check p99 budget")
	minRate := fs.Float64("min-checks-per-sec", 50, "sustained delta-check throughput floor")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	blob, err := os.ReadFile(*in)
	if err != nil {
		fmt.Fprintf(stderr, "slogate: %v\n", err)
		return 2
	}
	var res service.LoadResult
	if err := json.Unmarshal(blob, &res); err != nil {
		fmt.Fprintf(stderr, "slogate: %s: %v\n", *in, err)
		return 2
	}

	ok := true
	p99 := time.Duration(res.WarmP99NS)
	if p99 > *maxP99 {
		fmt.Fprintf(stderr, "slogate: FAIL warm p99 %s > budget %s\n", p99, *maxP99)
		ok = false
	}
	if res.ChecksPerSec < *minRate {
		fmt.Fprintf(stderr, "slogate: FAIL %.0f checks/s < floor %.0f\n", res.ChecksPerSec, *minRate)
		ok = false
	}
	if !res.ViolationsOK {
		fmt.Fprintln(stderr, "slogate: FAIL load run reported violation-count mismatches")
		ok = false
	}
	if res.Errors > 0 {
		fmt.Fprintf(stderr, "slogate: FAIL load run reported %d request errors\n", res.Errors)
		ok = false
	}
	if !ok {
		return 1
	}
	fmt.Fprintf(stdout, "slogate: OK warm p99 %s <= %s, %.0f checks/s >= %.0f\n",
		p99, *maxP99, res.ChecksPerSec, *minRate)
	return 0
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nmsl/internal/service"
)

func benchFile(t *testing.T, res service.LoadResult) string {
	t.Helper()
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_svc.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func healthy() service.LoadResult {
	return service.LoadResult{
		Tenants:      64,
		DeltaChecks:  10000,
		ChecksPerSec: 5000,
		WarmP99NS:    3_000_000, // 3ms
		ViolationsOK: true,
	}
}

func TestGatePasses(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-in", benchFile(t, healthy())}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "OK") {
		t.Fatalf("output: %q", out.String())
	}
}

func TestGateFailsOnSlowP99(t *testing.T) {
	res := healthy()
	res.WarmP99NS = 400_000_000 // 400ms > 250ms budget
	var out, errb strings.Builder
	if code := run([]string{"-in", benchFile(t, res)}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "warm p99") {
		t.Fatalf("stderr: %q", errb.String())
	}
}

func TestGateFailsOnLowThroughput(t *testing.T) {
	res := healthy()
	res.ChecksPerSec = 3
	var out, errb strings.Builder
	if code := run([]string{"-in", benchFile(t, res)}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

func TestGateFailsOnBadCounts(t *testing.T) {
	res := healthy()
	res.ViolationsOK = false
	var out, errb strings.Builder
	if code := run([]string{"-in", benchFile(t, res)}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

func TestGateFailsOnErrors(t *testing.T) {
	res := healthy()
	res.Errors = 7
	var out, errb strings.Builder
	if code := run([]string{"-in", benchFile(t, res)}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

func TestGateCustomBudget(t *testing.T) {
	res := healthy() // p99 = 3ms
	var out, errb strings.Builder
	if code := run([]string{"-in", benchFile(t, res), "-max-warm-p99", "1ms"}, &out, &errb); code != 1 {
		t.Fatalf("tightened budget should fail: exit %d", code)
	}
}

func TestGateMissingFile(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-in", filepath.Join(t.TempDir(), "nope.json")}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

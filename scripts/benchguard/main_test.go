package main

import (
	"strings"
	"testing"
)

func doc(cpu string, entries ...Benchmark) *Document {
	for i := range entries {
		if entries[i].Iterations == 0 {
			entries[i].Iterations = 20
		}
	}
	return &Document{CPU: cpu, Benchmarks: entries}
}

func TestCompareWithinTolerance(t *testing.T) {
	base := doc("xeon", Benchmark{Name: "CheckParallel8", NsPerOp: 1000})
	cur := doc("xeon", Benchmark{Name: "CheckParallel8", NsPerOp: 1150})
	results, failed, skip := compare(base, cur, []string{"CheckParallel8"}, 0.20)
	if skip != "" || failed {
		t.Fatalf("failed=%v skip=%q, want pass", failed, skip)
	}
	if results[0].status != "ok" {
		t.Errorf("status = %q, want ok", results[0].status)
	}
}

func TestCompareRegression(t *testing.T) {
	base := doc("xeon", Benchmark{Name: "CheckWarmCache", NsPerOp: 1000})
	cur := doc("xeon", Benchmark{Name: "CheckWarmCache", NsPerOp: 1201})
	results, failed, _ := compare(base, cur, []string{"CheckWarmCache"}, 0.20)
	if !failed || results[0].status != "regression" {
		t.Fatalf("results = %+v failed=%v, want regression", results, failed)
	}
	out := render(results, 0.20)
	if !strings.Contains(out, "regression") || !strings.Contains(out, "CheckWarmCache") {
		t.Errorf("render output not readable:\n%s", out)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	base := doc("xeon", Benchmark{Name: "CheckWarmCache", NsPerOp: 1000})
	cur := doc("xeon", Benchmark{Name: "CheckWarmCache", NsPerOp: 500})
	results, failed, _ := compare(base, cur, []string{"CheckWarmCache"}, 0.20)
	if failed || results[0].status != "improvement" {
		t.Fatalf("results = %+v failed=%v, want passing improvement", results, failed)
	}
}

func TestCompareUsesMinOverCounts(t *testing.T) {
	// -count=3 emits the same name three times; min discounts the noisy
	// outliers on both sides.
	base := doc("xeon",
		Benchmark{Name: "CheckParallel8", NsPerOp: 1300},
		Benchmark{Name: "CheckParallel8", NsPerOp: 1000},
		Benchmark{Name: "CheckParallel8", NsPerOp: 1900})
	cur := doc("xeon",
		Benchmark{Name: "CheckParallel8", NsPerOp: 2000},
		Benchmark{Name: "CheckParallel8", NsPerOp: 1100})
	results, failed, _ := compare(base, cur, []string{"CheckParallel8"}, 0.20)
	if failed {
		t.Fatalf("results = %+v, want pass (min 1100 vs min 1000)", results)
	}
	if results[0].base.ns != 1000 || results[0].cur.ns != 1100 {
		t.Errorf("min selection wrong: %+v", results[0])
	}
}

func TestCompareIgnoresSmokeEntries(t *testing.T) {
	// The 1x smoke sweep's single-iteration timings are warmup-biased;
	// only multi-iteration samples participate in the min.
	base := doc("xeon",
		Benchmark{Name: "CheckParallel8", Iterations: 1, NsPerOp: 100},
		Benchmark{Name: "CheckParallel8", Iterations: 20, NsPerOp: 1000})
	cur := doc("xeon", Benchmark{Name: "CheckParallel8", NsPerOp: 1100})
	results, failed, _ := compare(base, cur, []string{"CheckParallel8"}, 0.20)
	if failed || results[0].base.ns != 1000 {
		t.Fatalf("results = %+v failed=%v, want smoke entry ignored", results, failed)
	}
	smokeOnly := doc("xeon", Benchmark{Name: "CheckParallel8", Iterations: 1, NsPerOp: 100})
	results, failed, _ = compare(smokeOnly, cur, []string{"CheckParallel8"}, 0.20)
	if failed || results[0].status != "no-baseline" {
		t.Fatalf("results = %+v failed=%v, want passing no-baseline for smoke-only doc", results, failed)
	}
}

func TestCompareSkipsOnCPUMismatch(t *testing.T) {
	base := doc("xeon", Benchmark{Name: "CheckParallel8", NsPerOp: 1000})
	cur := doc("epyc", Benchmark{Name: "CheckParallel8", NsPerOp: 9000})
	_, failed, skip := compare(base, cur, []string{"CheckParallel8"}, 0.20)
	if failed || skip == "" {
		t.Fatalf("failed=%v skip=%q, want clean skip", failed, skip)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := doc("xeon", Benchmark{Name: "CheckParallel8", NsPerOp: 1000})
	cur := doc("xeon")
	results, failed, _ := compare(base, cur, []string{"CheckParallel8"}, 0.20)
	if !failed {
		t.Fatalf("results = %+v, want failure when guarded benchmark vanishes", results)
	}
}

func TestCompareAllocRegressionFails(t *testing.T) {
	// Same speed, 2x the allocations: a perf guard that only watches
	// ns/op misses exactly the regressions the arena work prevents.
	base := doc("xeon", Benchmark{Name: "CheckWarmCache", NsPerOp: 1000, AllocsPerOp: 10, BytesPerOp: 640})
	cur := doc("xeon", Benchmark{Name: "CheckWarmCache", NsPerOp: 1000, AllocsPerOp: 20, BytesPerOp: 640})
	results, failed, _ := compare(base, cur, []string{"CheckWarmCache"}, 0.20)
	if !failed || results[0].status != "regression" || results[0].memNote == "" {
		t.Fatalf("results = %+v failed=%v, want allocation regression", results, failed)
	}
	out := render(results, 0.20)
	if !strings.Contains(out, "allocs/op 10.0 -> 20.0") {
		t.Errorf("render does not name the allocation regression:\n%s", out)
	}
}

func TestCompareZeroAllocBaselineIsExact(t *testing.T) {
	// A zero-alloc baseline admits no new allocations at all (the +0.5
	// slack covers integer jitter on counting baselines, not zero ones).
	base := doc("xeon", Benchmark{Name: "CheckWarmCache", NsPerOp: 1000, AllocsPerOp: 0, BytesPerOp: 512})
	cur := doc("xeon", Benchmark{Name: "CheckWarmCache", NsPerOp: 1000, AllocsPerOp: 1, BytesPerOp: 512})
	_, failed, _ := compare(base, cur, []string{"CheckWarmCache"}, 0.20)
	if !failed {
		t.Fatal("one allocation over a zero-alloc baseline must fail")
	}
	same := doc("xeon", Benchmark{Name: "CheckWarmCache", NsPerOp: 1000, AllocsPerOp: 0, BytesPerOp: 512})
	_, failed, _ = compare(base, same, []string{"CheckWarmCache"}, 0.20)
	if failed {
		t.Fatal("identical zero-alloc runs must pass")
	}
}

func TestCompareBytesRegressionFails(t *testing.T) {
	base := doc("xeon", Benchmark{Name: "MemAgentRoundTrip", NsPerOp: 1000, AllocsPerOp: 4, BytesPerOp: 1000})
	cur := doc("xeon", Benchmark{Name: "MemAgentRoundTrip", NsPerOp: 1000, AllocsPerOp: 4, BytesPerOp: 1500})
	results, failed, _ := compare(base, cur, []string{"MemAgentRoundTrip"}, 0.20)
	if !failed || results[0].memNote == "" {
		t.Fatalf("results = %+v failed=%v, want B/op regression", results, failed)
	}
}

func TestCompareWithoutBenchmemSkipsAllocs(t *testing.T) {
	// Legacy documents recorded without -benchmem carry parser zeros for
	// the memory fields; they must not masquerade as zero-alloc gates.
	base := doc("xeon", Benchmark{Name: "CheckParallel8", NsPerOp: 1000})
	cur := doc("xeon", Benchmark{Name: "CheckParallel8", NsPerOp: 1000, AllocsPerOp: 50, BytesPerOp: 4096})
	_, failed, _ := compare(base, cur, []string{"CheckParallel8"}, 0.20)
	if failed {
		t.Fatal("allocation guard fired against a baseline with no -benchmem data")
	}
}

func TestCompareNoBaselineWarnsButPasses(t *testing.T) {
	base := doc("xeon")
	cur := doc("xeon", Benchmark{Name: "CheckWarmCache", NsPerOp: 900})
	results, failed, _ := compare(base, cur, []string{"CheckWarmCache"}, 0.20)
	if failed || results[0].status != "no-baseline" {
		t.Fatalf("results = %+v failed=%v, want passing no-baseline", results, failed)
	}
}

// benchguard compares a fresh benchmark run against the committed
// baseline (BENCH_5.json and successors) and fails when a guarded
// benchmark regresses beyond the tolerance. It reads the JSON documents
// produced by scripts/bench2json; with -count > 1 the same benchmark
// appears several times and the minimum ns/op is used on both sides,
// which discounts scheduler noise without hiding real regressions.
//
// Benchmark timings only compare within one machine class, so when the
// baseline and current documents report different CPU strings the guard
// prints a warning and exits 0 rather than failing on hardware drift.
//
// Usage:
//
//	go run ./scripts/benchguard -baseline BENCH_5.json -current BENCH_guard.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// Benchmark and Document mirror the fields of scripts/bench2json that
// the guard consumes.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op,omitempty"`
}

type Document struct {
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// result is one guarded benchmark's verdict.
type result struct {
	name      string
	base, cur float64 // min ns/op on each side
	delta     float64 // (cur-base)/base
	status    string  // "ok", "regression", "improvement", "no-baseline"
}

// minNs returns the minimum ns/op over every multi-iteration entry
// named name. Single-iteration entries come from the -benchtime=1x
// smoke sweep, where warmup effects dominate the timing; mixing them
// into a min would bias the comparison, so they are skipped.
func minNs(d *Document, name string) (float64, bool) {
	best, ok := 0.0, false
	for _, b := range d.Benchmarks {
		if b.Name != name || b.NsPerOp <= 0 || b.Iterations < 2 {
			continue
		}
		if !ok || b.NsPerOp < best {
			best, ok = b.NsPerOp, true
		}
	}
	return best, ok
}

// compare evaluates the guarded benchmarks. A non-empty skip string
// means the comparison is meaningless (different hardware) and the
// caller should exit 0. failed reports a regression beyond tol, or a
// guarded benchmark missing from the current run.
func compare(base, cur *Document, names []string, tol float64) (results []result, failed bool, skip string) {
	if base.CPU != cur.CPU {
		return nil, false, fmt.Sprintf("baseline CPU %q != current CPU %q; cross-machine timings do not compare", base.CPU, cur.CPU)
	}
	for _, name := range names {
		c, okC := minNs(cur, name)
		if !okC {
			results = append(results, result{name: name, status: "missing from current run"})
			failed = true
			continue
		}
		b, okB := minNs(base, name)
		if !okB {
			results = append(results, result{name: name, cur: c, status: "no-baseline"})
			continue
		}
		r := result{name: name, base: b, cur: c, delta: (c - b) / b}
		switch {
		case r.delta > tol:
			r.status = "regression"
			failed = true
		case r.delta < -tol:
			r.status = "improvement"
		default:
			r.status = "ok"
		}
		results = append(results, r)
	}
	return results, failed, ""
}

func render(results []result, tol float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s %14s %14s %8s  %s\n", "benchmark", "baseline ns/op", "current ns/op", "delta", "verdict")
	for _, r := range results {
		if r.base == 0 {
			fmt.Fprintf(&sb, "%-24s %14s %14.0f %8s  %s\n", r.name, "-", r.cur, "-", r.status)
			continue
		}
		fmt.Fprintf(&sb, "%-24s %14.0f %14.0f %+7.1f%%  %s\n", r.name, r.base, r.cur, 100*r.delta, r.status)
	}
	fmt.Fprintf(&sb, "tolerance: +-%.0f%%\n", 100*tol)
	return sb.String()
}

func load(path string) (*Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Document
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &d, nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_5.json", "committed baseline document (bench2json format)")
	current := flag.String("current", "BENCH_guard.json", "fresh run to compare (bench2json format)")
	tol := flag.Float64("tolerance", 0.20, "allowed fractional ns/op drift before failing")
	bench := flag.String("bench",
		"CheckParallel1,CheckParallel8,CheckWarmCache,ChangeContractCheck,CheckDomains10000,CheckParallel10k1,CheckParallel10k8,MemAgentRoundTrip,MegaFleetInstall",
		"comma-separated guarded benchmark names (bench2json names, no Benchmark prefix)")
	flag.Parse()

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(1)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(1)
	}
	names := strings.Split(*bench, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	results, failed, skip := compare(base, cur, names, *tol)
	if skip != "" {
		fmt.Printf("benchguard: skipped: %s\n", skip)
		return
	}
	fmt.Print(render(results, *tol))
	if failed {
		fmt.Println("benchguard: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchguard: ok")
}

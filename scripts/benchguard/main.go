// benchguard compares a fresh benchmark run against the committed
// baseline (BENCH_5.json and successors) and fails when a guarded
// benchmark regresses beyond the tolerance — in time (ns/op) or in
// allocation (allocs/op, B/op). It reads the JSON documents produced by
// scripts/bench2json; with -count > 1 the same benchmark appears
// several times and the minimum of each metric is used on both sides,
// which discounts scheduler noise without hiding real regressions.
//
// Allocation counts are near-deterministic, so they are compared with
// the same fractional tolerance plus half an allocation of slack: a
// zero-alloc baseline stays an exact zero-alloc requirement, while
// counting baselines absorb ±0 jitter from map growth. Entries without
// -benchmem fields (both sides zero) skip the allocation comparison.
//
// Benchmark timings only compare within one machine class, so when the
// baseline and current documents report different CPU strings the guard
// prints a warning and exits 0 rather than failing on hardware drift.
//
// Usage:
//
//	go run ./scripts/benchguard -baseline BENCH_5.json -current BENCH_guard.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// Benchmark and Document mirror the fields of scripts/bench2json that
// the guard consumes.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

type Document struct {
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// sample is the per-side minimum of each guarded metric.
type sample struct {
	ns     float64
	bytes  float64
	allocs float64
	// memOK reports whether any entry carried -benchmem fields; without
	// them bytes/allocs are parser zeros, not measurements.
	memOK bool
	ok    bool
}

// result is one guarded benchmark's verdict.
type result struct {
	name      string
	base, cur sample
	delta     float64 // (cur-base)/base over ns/op
	status    string  // "ok", "regression", "improvement", "no-baseline", ...
	memNote   string  // non-empty when an allocation metric regressed
}

// minSample returns the per-metric minimum over every multi-iteration
// entry named name. Single-iteration entries come from the
// -benchtime=1x smoke sweep, where warmup effects dominate; mixing them
// into a min would bias the comparison, so they are skipped.
func minSample(d *Document, name string) sample {
	var s sample
	for _, b := range d.Benchmarks {
		if b.Name != name || b.NsPerOp <= 0 || b.Iterations < 2 {
			continue
		}
		if !s.ok {
			s = sample{ns: b.NsPerOp, bytes: b.BytesPerOp, allocs: b.AllocsPerOp, ok: true}
		} else {
			if b.NsPerOp < s.ns {
				s.ns = b.NsPerOp
			}
			if b.BytesPerOp < s.bytes {
				s.bytes = b.BytesPerOp
			}
			if b.AllocsPerOp < s.allocs {
				s.allocs = b.AllocsPerOp
			}
		}
		if b.AllocsPerOp > 0 || b.BytesPerOp > 0 {
			s.memOK = true
		}
	}
	return s
}

// memRegressed reports whether cur exceeds base by more than the
// fractional tolerance plus half a unit (so a 0 baseline demands an
// exact 0, and integer counting metrics absorb rounding).
func memRegressed(base, cur, tol float64) bool {
	return cur > base*(1+tol)+0.5
}

// compare evaluates the guarded benchmarks. A non-empty skip string
// means the comparison is meaningless (different hardware) and the
// caller should exit 0. failed reports a regression beyond tol, or a
// guarded benchmark missing from the current run.
func compare(base, cur *Document, names []string, tol float64) (results []result, failed bool, skip string) {
	if base.CPU != cur.CPU {
		return nil, false, fmt.Sprintf("baseline CPU %q != current CPU %q; cross-machine timings do not compare", base.CPU, cur.CPU)
	}
	for _, name := range names {
		c := minSample(cur, name)
		if !c.ok {
			results = append(results, result{name: name, status: "missing from current run"})
			failed = true
			continue
		}
		b := minSample(base, name)
		if !b.ok {
			results = append(results, result{name: name, cur: c, status: "no-baseline"})
			continue
		}
		r := result{name: name, base: b, cur: c, delta: (c.ns - b.ns) / b.ns}
		switch {
		case r.delta > tol:
			r.status = "regression"
			failed = true
		case r.delta < -tol:
			r.status = "improvement"
		default:
			r.status = "ok"
		}
		// Allocation guard: only when both sides actually measured memory
		// (-benchmem on both runs). Timings drift with load; allocation
		// counts should not.
		if b.memOK && c.memOK {
			if memRegressed(b.allocs, c.allocs, tol) {
				r.memNote = fmt.Sprintf("allocs/op %.1f -> %.1f", b.allocs, c.allocs)
				r.status = "regression"
				failed = true
			} else if memRegressed(b.bytes, c.bytes, tol) {
				r.memNote = fmt.Sprintf("B/op %.0f -> %.0f", b.bytes, c.bytes)
				r.status = "regression"
				failed = true
			}
		}
		results = append(results, r)
	}
	return results, failed, ""
}

func render(results []result, tol float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-32s %14s %14s %8s %12s  %s\n", "benchmark", "baseline ns/op", "current ns/op", "delta", "allocs/op", "verdict")
	for _, r := range results {
		if !r.base.ok {
			fmt.Fprintf(&sb, "%-32s %14s %14.0f %8s %12s  %s\n", r.name, "-", r.cur.ns, "-", "-", r.status)
			continue
		}
		allocs := fmt.Sprintf("%.0f->%.0f", r.base.allocs, r.cur.allocs)
		verdict := r.status
		if r.memNote != "" {
			verdict += " (" + r.memNote + ")"
		}
		fmt.Fprintf(&sb, "%-32s %14.0f %14.0f %+7.1f%% %12s  %s\n", r.name, r.base.ns, r.cur.ns, 100*r.delta, allocs, verdict)
	}
	fmt.Fprintf(&sb, "tolerance: +-%.0f%% (ns/op, allocs/op, B/op)\n", 100*tol)
	return sb.String()
}

func load(path string) (*Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Document
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &d, nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_5.json", "committed baseline document (bench2json format)")
	current := flag.String("current", "BENCH_guard.json", "fresh run to compare (bench2json format)")
	tol := flag.Float64("tolerance", 0.20, "allowed fractional drift before failing")
	bench := flag.String("bench",
		"CheckParallel1,CheckParallel8,CheckWarmCache,ChangeContractCheck,CheckDomains10000,CheckParallel10k1,CheckParallel10k8,MemAgentRoundTrip,MegaFleetInstall,CheckDomains100k,CheckDomains100kWarmDelta,MegaFleetInstall25k",
		"comma-separated guarded benchmark names (bench2json names, no Benchmark prefix)")
	flag.Parse()

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(1)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(1)
	}
	names := strings.Split(*bench, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	results, failed, skip := compare(base, cur, names, *tol)
	if skip != "" {
		fmt.Printf("benchguard: skipped: %s\n", skip)
		return
	}
	fmt.Print(render(results, *tol))
	if failed {
		fmt.Println("benchguard: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchguard: ok")
}

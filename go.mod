module nmsl

go 1.22

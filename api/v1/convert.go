package apiv1

import (
	"context"
	"errors"
	"net/http"

	"nmsl/internal/changespec"
	"nmsl/internal/configgen"
	"nmsl/internal/consistency"
)

// Converters from the library's result types onto the wire. These are
// the only place the internal shapes and the frozen wire shapes meet:
// the daemon and every CLI -json flag go through them, so the two can
// never drift apart.

// FromViolation converts one checker violation.
func FromViolation(v consistency.Violation) Violation {
	out := Violation{Kind: string(v.Kind), Message: v.Message}
	if v.Ref != nil {
		out.Source = v.Ref.Source.ID
		out.Target = v.Ref.Target.ID
		out.Var = v.Ref.Var.Path()
		out.Access = v.Ref.Access.String()
	}
	return out
}

// FromReport converts a consistency report.
func FromReport(r *consistency.Report) Report {
	out := Report{
		APIVersion:  Version,
		Consistent:  r.Consistent(),
		RefsChecked: r.RefsChecked,
		Summary:     r.Summary(),
	}
	if n := len(r.Violations); n > 0 {
		out.Violations = make([]Violation, n)
		for i, v := range r.Violations {
			out.Violations[i] = FromViolation(v)
		}
	}
	return out
}

// FromDelta converts a model delta summary. A nil delta converts to
// nil.
func FromDelta(d *consistency.ModelDelta) *ModelDelta {
	if d == nil {
		return nil
	}
	return &ModelDelta{
		Full:       d.Full,
		MIBChanged: d.MIBChanged,
		Domains:    append([]string(nil), d.Domains...),
		Systems:    append([]string(nil), d.Systems...),
		Processes:  append([]string(nil), d.Processes...),
		Instances:  append([]string(nil), d.Instances...),
	}
}

// FromCacheStats converts result-cache counters. A nil receiver-side
// cache is represented by a nil pointer at the call sites, not here.
func FromCacheStats(s consistency.CacheStats) CacheStats {
	return CacheStats{
		Hits:          s.Hits,
		Misses:        s.Misses,
		Invalidations: s.Invalidations,
		Evictions:     s.Evictions,
		Entries:       s.Entries,
	}
}

// FromRolloutReport converts a rollout report.
func FromRolloutReport(r *configgen.RolloutReport) RolloutReport {
	out := RolloutReport{
		APIVersion: Version,
		OK:         r.OK(),
		Installed:  r.Installed,
		Failed:     r.Failed,
		Skipped:    r.Skipped,
		Canceled:   r.Canceled,
		RolledBack: r.RolledBack,
		Attempts:   r.Attempts,
		DurationNS: int64(r.Duration),
		Summary:    r.Summary(),
	}
	if n := len(r.Results); n > 0 {
		out.Targets = make([]RolloutTarget, n)
		for i, t := range r.Results {
			wt := RolloutTarget{
				Instance:   t.Target.InstanceID,
				Addr:       t.Target.Addr,
				Status:     t.Status.String(),
				Attempts:   t.Attempts,
				Digest:     t.Digest,
				Resumed:    t.Resumed,
				DurationNS: int64(t.Duration),
			}
			if t.Err != nil {
				wt.Error = t.Err.Error()
			}
			out.Targets[i] = wt
		}
	}
	return out
}

// FromContractViolations converts change-contract violations.
func FromContractViolations(vs []changespec.ContractViolation) []ContractViolation {
	if len(vs) == 0 {
		return nil
	}
	out := make([]ContractViolation, len(vs))
	for i, v := range vs {
		out[i] = ContractViolation{
			Contract: v.Contract,
			Clause:   v.Clause,
			Entry:    v.Entry,
			Message:  v.Message,
		}
	}
	return out
}

// NewError builds the uniform error envelope.
func NewError(code int, message string) *Error {
	return &Error{APIVersion: Version, Code: code, Message: message}
}

// StatusFromErr is the shared context-error mapping: both the checker
// (CheckContext) and the rollout (DistributeContext) return their
// partial result together with ctx.Err() when cut short, and every
// HTTP surface maps those errors the same way — cancellation is the
// client's doing (499, nginx's convention), a deadline is a timeout
// (504), anything else is a server error (500). nil maps to 200.
func StatusFromErr(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, context.Canceled):
		return 499
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

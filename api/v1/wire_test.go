package apiv1

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden wire files")

// goldenDocs is one representative instance of every wire type, with
// every field populated, so a renamed/retyped/dropped JSON tag shows
// up as a golden diff. Freezing these documents freezes the v1 wire
// format.
func goldenDocs() map[string]any {
	yes := true
	return map[string]any{
		"report": Report{
			APIVersion:  Version,
			Consistent:  false,
			RefsChecked: 42,
			Violations: []Violation{{
				Kind:    "frequency-violation",
				Source:  "noc.poller",
				Target:  "edge.agent",
				Var:     "system.ifTable",
				Access:  "ReadOnly",
				Message: "poll period 5s exceeds permitted 30s",
			}},
			Summary: "INCONSISTENT: 42 references checked, 1 violation",
		},
		"delta": ModelDelta{
			Full:       false,
			MIBChanged: true,
			Domains:    []string{"core"},
			Systems:    []string{"core.sw1"},
			Processes:  []string{"poller"},
			Instances:  []string{"core.sw1.agent"},
		},
		"rollout_report": RolloutReport{
			APIVersion: Version,
			OK:         false,
			Installed:  3,
			Failed:     1,
			Skipped:    0,
			Canceled:   1,
			RolledBack: 2,
			Attempts:   7,
			DurationNS: 1500000,
			Summary:    "rollout: 3 installed, 1 failed",
			Targets: []RolloutTarget{{
				Instance:   "core.sw1.agent",
				Addr:       "10.0.0.1:161",
				Status:     "failed",
				Attempts:   3,
				Error:      "timeout",
				Digest:     "ab12",
				Resumed:    true,
				DurationNS: 250000,
			}},
		},
		"error": Error{APIVersion: Version, Code: 429, Message: "tenant rate limit exceeded"},
		"spec_request": SpecRequest{
			Sources:    []Source{{Name: "net.nmsl", Text: "domain public { }"}},
			Extensions: []Source{{Name: "ext.nmslext", Text: "extension x"}},
		},
		"spec_response": SpecResponse{
			APIVersion: Version,
			Tenant:     "acme",
			Generation: 2,
			Delta:      &ModelDelta{Systems: []string{"core.sw1"}},
			Instances:  12,
			Refs:       30,
			Perms:      18,
		},
		"check_request": CheckRequest{Workers: 4, FailFast: true},
		"check_response": CheckResponse{
			APIVersion: Version,
			Tenant:     "acme",
			Generation: 2,
			Report:     Report{APIVersion: Version, Consistent: true, RefsChecked: 30, Summary: "CONSISTENT"},
			Delta:      true,
			Cache:      &CacheStats{Hits: 28, Misses: 2, Invalidations: 1, Evictions: 3, Entries: 30},
			DurationNS: 31337,
		},
		"generate_response": GenerateResponse{
			APIVersion: Version,
			Tenant:     "acme",
			Generation: 2,
			Configs:    map[string]json.RawMessage{"core.sw1.agent": json.RawMessage(`{"community":"public"}`)},
		},
		"rollout_request": RolloutRequest{
			Targets:  []RolloutRequestTarget{{Instance: "core.sw1.agent", Addr: "10.0.0.1:161", Admin: "admin"}},
			Workers:  4,
			Retries:  2,
			FailFast: true,
		},
		"verify_change_request": VerifyChangeRequest{
			Contract:   "contract small ::=\n    scope core;\nend contract small.",
			Sources:    []Source{{Name: "net.nmsl", Text: "domain public { }"}},
			Extensions: []Source{{Name: "ext.nmslext", Text: "extension x"}},
		},
		"verify_change_response": VerifyChangeResponse{
			APIVersion:         Version,
			Tenant:             "acme",
			Generation:         2,
			OK:                 false,
			Delta:              &ModelDelta{Systems: []string{"core.sw1"}},
			DirtyInstances:     3,
			AddedInstances:     1,
			RemovedInstances:   0,
			AddedPermissions:   2,
			RemovedPermissions: 1,
			Violations: []ContractViolation{{
				Contract: "small",
				Clause:   "scope",
				Entry:    "agent@core.sw2#0",
				Message:  "edit touches instance agent@core.sw2#0 outside contract scope [core]",
			}},
			DurationNS: 31337,
		},
		"tenants_response": TenantsResponse{
			APIVersion: Version,
			Tenants: []TenantInfo{{
				ID:         "acme",
				Generation: 2,
				Consistent: &yes,
				Cache:      &CacheStats{Hits: 28, Misses: 2, Entries: 30},
			}},
		},
	}
}

// TestGoldenWireFormat freezes the JSON encoding of every wire type.
// A failing diff means the v1 wire format changed: either revert the
// change or introduce a v2 package (see the package comment).
func TestGoldenWireFormat(t *testing.T) {
	for name, doc := range goldenDocs() {
		t.Run(name, func(t *testing.T) {
			got, err := json.MarshalIndent(doc, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", name+".golden.json")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("wire format drifted from %s:\n--- want ---\n%s--- got ---\n%s", path, want, got)
			}
		})
	}
}

// TestGoldenRoundTrip proves every golden document decodes back to the
// value it was encoded from — no field is silently dropped on either
// direction.
func TestGoldenRoundTrip(t *testing.T) {
	for name, doc := range goldenDocs() {
		t.Run(name, func(t *testing.T) {
			blob, err := json.Marshal(doc)
			if err != nil {
				t.Fatal(err)
			}
			back := reflect.New(reflect.TypeOf(doc))
			if err := json.Unmarshal(blob, back.Interface()); err != nil {
				t.Fatal(err)
			}
			if got := back.Elem().Interface(); !reflect.DeepEqual(got, doc) {
				t.Errorf("round trip changed the document:\nsent %#v\ngot  %#v", doc, got)
			}
		})
	}
}

// TestStatusFromErr pins the shared context-error mapping.
func TestStatusFromErr(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 200},
		{context.Canceled, 499},
		{fmt.Errorf("check aborted: %w", context.Canceled), 499},
		{context.DeadlineExceeded, 504},
		{os.ErrPermission, 500},
	}
	for _, c := range cases {
		if got := StatusFromErr(c.err); got != c.want {
			t.Errorf("StatusFromErr(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// Package apiv1 defines the versioned wire types of the NMSL service
// API. Every JSON document the nmsld daemon emits or accepts — and the
// -json output of the CLIs — is one of these types, tagged with the API
// version so clients can detect incompatible servers.
//
// The wire format is FROZEN: field names, types and omitempty behavior
// are covered by golden round-trip tests (testdata/*.golden.json).
// Additive evolution (new optional fields) is allowed within v1;
// renaming or retyping a field requires a v2 package served alongside
// this one. Durations travel as integer nanoseconds (suffix _ns),
// matching the observability layer's histogram units; periods from the
// specification language travel as float seconds (suffix _s), matching
// NMSL's frequency clauses.
package apiv1

import "encoding/json"

// Version identifies this wire format. Servers echo it in every
// response; clients should reject documents with a different version.
const Version = "nmsl/v1"

// Source is one named NMSL source text (a specification or extension
// file shipped to the daemon).
type Source struct {
	Name string `json:"name"`
	Text string `json:"text"`
}

// Violation is one immediate cause of inconsistency on the wire.
type Violation struct {
	// Kind is the violation class (no-permission, access-violation,
	// frequency-violation, domain-restriction, no-support,
	// unresolved-target).
	Kind string `json:"kind"`
	// Source and Target are the failing reference's instance IDs; empty
	// for unresolved-target and proxy causes, which have no resolved
	// reference.
	Source string `json:"source,omitempty"`
	Target string `json:"target,omitempty"`
	// Var is the referenced MIB name (dotted path).
	Var string `json:"var,omitempty"`
	// Access is the access mode the reference needs.
	Access string `json:"access,omitempty"`
	// Message is the rendered human-readable cause.
	Message string `json:"message"`
}

// Report is a consistency-check result on the wire.
type Report struct {
	APIVersion string `json:"api_version"`
	// Consistent is true when no violations were found.
	Consistent bool `json:"consistent"`
	// RefsChecked counts the references examined.
	RefsChecked int `json:"refs_checked"`
	// Violations lists every immediate cause, in the checker's
	// deterministic order.
	Violations []Violation `json:"violations,omitempty"`
	// Summary is the one-line digest (Report.Summary of the library).
	Summary string `json:"summary"`
}

// ModelDelta summarizes which declarations an edit touched (the input
// to a delta re-check).
type ModelDelta struct {
	// Full forces a complete re-check.
	Full bool `json:"full,omitempty"`
	// MIBChanged reports a type-tree change, which invalidates globally.
	MIBChanged bool     `json:"mib_changed,omitempty"`
	Domains    []string `json:"domains,omitempty"`
	Systems    []string `json:"systems,omitempty"`
	Processes  []string `json:"processes,omitempty"`
	Instances  []string `json:"instances,omitempty"`
}

// CacheStats snapshots a tenant's result-cache counters.
type CacheStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Invalidations int64 `json:"invalidations"`
	Evictions     int64 `json:"evictions"`
	Entries       int   `json:"entries"`
}

// RolloutTarget is one target's outcome on the wire.
type RolloutTarget struct {
	Instance string `json:"instance"`
	Addr     string `json:"addr"`
	// Status is installed, failed, skipped, canceled or rolled-back.
	Status   string `json:"status"`
	Attempts int    `json:"attempts"`
	// Error is the last error observed (empty when installed).
	Error string `json:"error,omitempty"`
	// Digest identifies the configuration now on the agent, as far as
	// the rollout knows.
	Digest string `json:"digest,omitempty"`
	// Resumed marks a target satisfied without an install.
	Resumed    bool  `json:"resumed,omitempty"`
	DurationNS int64 `json:"duration_ns"`
}

// RolloutReport aggregates a rollout on the wire.
type RolloutReport struct {
	APIVersion string `json:"api_version"`
	// OK is true when every target was installed (a rolled-back wave is
	// not success).
	OK         bool            `json:"ok"`
	Installed  int             `json:"installed"`
	Failed     int             `json:"failed"`
	Skipped    int             `json:"skipped"`
	Canceled   int             `json:"canceled"`
	RolledBack int             `json:"rolled_back"`
	Attempts   int             `json:"attempts"`
	DurationNS int64           `json:"duration_ns"`
	Summary    string          `json:"summary"`
	Targets    []RolloutTarget `json:"targets,omitempty"`
}

// Error is the uniform error envelope: every non-2xx response from the
// daemon carries exactly this document.
type Error struct {
	APIVersion string `json:"api_version"`
	// Code mirrors the HTTP status code.
	Code int `json:"code"`
	// Message describes what failed.
	Message string `json:"message"`
}

// SpecRequest replaces (or creates) a tenant's specification.
type SpecRequest struct {
	// Sources are the specification files, compiled in order.
	Sources []Source `json:"sources"`
	// Extensions are NMSL/EXT extension files, installed before the
	// sources are compiled.
	Extensions []Source `json:"extensions,omitempty"`
}

// SpecResponse acknowledges a spec update.
type SpecResponse struct {
	APIVersion string `json:"api_version"`
	Tenant     string `json:"tenant"`
	// Generation counts this tenant's accepted spec revisions,
	// starting at 1.
	Generation int64 `json:"generation"`
	// Delta summarizes what changed relative to the previous generation
	// (nil on the first upload).
	Delta *ModelDelta `json:"delta,omitempty"`
	// Instances, Refs and Perms size the compiled model.
	Instances int `json:"instances"`
	Refs      int `json:"refs"`
	Perms     int `json:"perms"`
}

// CheckRequest tunes a check or delta-check run. The zero value asks
// for the service defaults.
type CheckRequest struct {
	// Workers bounds the check's worker pool; 0 selects the service
	// default.
	Workers int `json:"workers,omitempty"`
	// FailFast stops the check at the first violation.
	FailFast bool `json:"fail_fast,omitempty"`
}

// CheckResponse is the result of a check or delta-check.
type CheckResponse struct {
	APIVersion string `json:"api_version"`
	Tenant     string `json:"tenant"`
	Generation int64  `json:"generation"`
	Report     Report `json:"report"`
	// Delta reports whether the run was an incremental delta-check
	// (replaying the previous report for untouched references) rather
	// than a full check.
	Delta bool `json:"delta,omitempty"`
	// Cache snapshots the tenant's result cache after the run.
	Cache      *CacheStats `json:"cache,omitempty"`
	DurationNS int64       `json:"duration_ns"`
}

// GenerateResponse carries the derived per-agent configurations. Each
// config is the snmp.Config JSON used by the live install path.
type GenerateResponse struct {
	APIVersion string `json:"api_version"`
	Tenant     string `json:"tenant"`
	Generation int64  `json:"generation"`
	// Configs maps instance IDs to their configurations.
	Configs map[string]json.RawMessage `json:"configs"`
}

// RolloutRequestTarget names one agent to install at.
type RolloutRequestTarget struct {
	Instance string `json:"instance"`
	Addr     string `json:"addr"`
	Admin    string `json:"admin,omitempty"`
}

// RolloutRequest asks the daemon to roll the tenant's generated
// configuration out to a fleet.
type RolloutRequest struct {
	Targets []RolloutRequestTarget `json:"targets"`
	// Workers bounds concurrent installs; 0 selects the default.
	Workers int `json:"workers,omitempty"`
	// Retries is the per-target retry budget; 0 selects the default.
	Retries int `json:"retries,omitempty"`
	// FailFast cancels remaining targets after the first failure.
	FailFast bool `json:"fail_fast,omitempty"`
}

// RolloutResponse wraps the rollout report.
type RolloutResponse struct {
	APIVersion string        `json:"api_version"`
	Tenant     string        `json:"tenant"`
	Generation int64         `json:"generation"`
	Report     RolloutReport `json:"report"`
}

// ContractViolation is one violated change-contract clause on the
// wire.
type ContractViolation struct {
	// Contract is the violated contract's name.
	Contract string `json:"contract"`
	// Clause is the violated clause's slug (scope, widen-access,
	// relax-frequency, max-added-instances, max-removed-instances,
	// max-added-permissions, max-removed-permissions).
	Clause string `json:"clause"`
	// Entry is the offending delta entry (an instance ID, a domain, or
	// a rendered permission); empty for whole-edit violations.
	Entry string `json:"entry,omitempty"`
	// Message is the rendered human-readable cause.
	Message string `json:"message"`
}

// VerifyChangeRequest verifies a proposed specification revision
// against change contracts, relative to the tenant's current
// generation. Nothing is installed either way.
type VerifyChangeRequest struct {
	// Contract is change-contract source text (one or more contract
	// declarations; the .ncs language).
	Contract string `json:"contract"`
	// Sources are the proposed specification files, compiled in order.
	Sources []Source `json:"sources"`
	// Extensions are NMSL/EXT extension files, installed before the
	// sources are compiled.
	Extensions []Source `json:"extensions,omitempty"`
}

// VerifyChangeResponse reports the contract verdict for a proposed
// revision.
type VerifyChangeResponse struct {
	APIVersion string `json:"api_version"`
	Tenant     string `json:"tenant"`
	// Generation is the tenant generation the proposal was verified
	// against (the pre-edit revision).
	Generation int64 `json:"generation"`
	// OK is true when every contract was satisfied.
	OK bool `json:"ok"`
	// Delta summarizes what the proposal changes.
	Delta *ModelDelta `json:"delta,omitempty"`
	// DirtyInstances counts the instances the edit touches; the
	// added/removed pairs count instance and permission churn.
	DirtyInstances     int `json:"dirty_instances"`
	AddedInstances     int `json:"added_instances"`
	RemovedInstances   int `json:"removed_instances"`
	AddedPermissions   int `json:"added_permissions"`
	RemovedPermissions int `json:"removed_permissions"`
	// Violations lists every violated clause across all contracts, in
	// evaluation order.
	Violations []ContractViolation `json:"violations,omitempty"`
	DurationNS int64               `json:"duration_ns"`
}

// TenantInfo summarizes one resident tenant (the list endpoint).
type TenantInfo struct {
	ID         string `json:"id"`
	Generation int64  `json:"generation"`
	// Consistent reflects the last completed check; nil when the tenant
	// has never been checked.
	Consistent *bool       `json:"consistent,omitempty"`
	Cache      *CacheStats `json:"cache,omitempty"`
}

// TenantsResponse lists the resident tenants.
type TenantsResponse struct {
	APIVersion string       `json:"api_version"`
	Tenants    []TenantInfo `json:"tenants"`
}

package nmsl

// The generated change-suite corpus (EXPERIMENTS.md E-RELA): every edit
// internal/changespec.Suite produces over a netsim internet is compiled,
// diffed against the base revision, and evaluated against the committed
// reference contract testdata/contracts/suite-guard.ncs. Each edit's
// violated-clause set must match its label exactly — edits labelled
// clean must pass, and edits labelled with clauses must violate exactly
// those clauses.

import (
	"os"
	"reflect"
	"sort"
	"testing"

	"nmsl/internal/changespec"
	"nmsl/internal/netsim"
)

// suiteParams sizes the suite's internet: 8 ring domains, 2 systems
// each, no injected inconsistencies (uniform poller frequencies).
var suiteParams = netsim.Params{Domains: 8, SystemsPerDomain: 2, Seed: 42}

func compileSource(t testing.TB, name, src string) *Specification {
	t.Helper()
	c := NewCompiler()
	if err := c.CompileSource(name, src); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	spec, err := c.Finish()
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return spec
}

func TestChangeSuiteAgainstReferenceContract(t *testing.T) {
	data, err := os.ReadFile("testdata/contracts/suite-guard.ncs")
	if err != nil {
		t.Fatal(err)
	}
	contracts, err := ParseChangeContracts("suite-guard.ncs", string(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(contracts) != 1 {
		t.Fatalf("got %d contracts, want 1", len(contracts))
	}
	guard := contracts[0]

	base, edits, err := changespec.Suite(suiteParams)
	if err != nil {
		t.Fatal(err)
	}
	baseSpec := compileSource(t, "base.nmsl", base)

	var pass, violate int
	for _, e := range edits {
		t.Run(e.Name, func(t *testing.T) {
			edited := compileSource(t, e.Name+".nmsl", e.Source)
			_, results := edited.VerifyChange(baseSpec, guard)
			if len(results) != 1 {
				t.Fatalf("got %d results", len(results))
			}
			r := results[0]

			// Collapse the violations to the set of distinct clauses.
			set := map[string]bool{}
			for _, v := range r.Violations {
				if v.Contract != guard.Name {
					t.Errorf("violation attributed to %q", v.Contract)
				}
				set[v.Clause] = true
			}
			var got []string
			for cl := range set {
				got = append(got, cl)
			}
			sort.Strings(got)
			want := append([]string(nil), e.MustViolate...)
			sort.Strings(want)
			if len(got) == 0 && len(want) == 0 {
				return
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("violated clauses %v, want %v\nviolations: %v", got, want, r.Violations)
			}
		})
		if len(e.MustViolate) == 0 {
			pass++
		} else {
			violate++
		}
	}
	t.Logf("suite: %d edits, %d must-pass, %d must-violate", len(edits), pass, violate)
	if pass == 0 || violate == 0 {
		t.Errorf("degenerate suite: pass=%d violate=%d", pass, violate)
	}
}

// The suite's base revision must itself be consistent — otherwise the
// must-pass edits would be rehearsing rollouts of a broken internet.
func TestChangeSuiteBaseConsistent(t *testing.T) {
	base, _, err := changespec.Suite(suiteParams)
	if err != nil {
		t.Fatal(err)
	}
	spec := compileSource(t, "base.nmsl", base)
	if rep := spec.Check(); !rep.Consistent() {
		t.Fatalf("base internet inconsistent: %v", rep.Violations[:min(len(rep.Violations), 3)])
	}
}

package nmsl

import (
	"context"
	"testing"

	"nmsl/internal/consistency"
	"nmsl/internal/netsim"
)

// Engine parity for the materialized-closure tentpole: the logic engine
// over materialized fact tables (CheckLogic / EngineLogic), the
// recursive-rule oracle (CheckLogicRecursive / EngineLogicRecursive)
// and the indexed checker must all render byte-identical reports.

// TestEngineParityCorpus triangulates the three engines across the
// testdata corpus, consistent and inconsistent specifications alike.
func TestEngineParityCorpus(t *testing.T) {
	for _, tc := range corpus {
		t.Run(tc.file, func(t *testing.T) {
			spec := compileCorpus(t, tc)
			m := spec.Model()
			indexed := consistency.Check(m)
			logic := consistency.CheckLogic(m)
			recursive := consistency.CheckLogicRecursive(m).String()
			if logic.String() != recursive {
				t.Errorf("materialized and recursive logic engines diverge:\n%s\nvs\n%s", logic, recursive)
			}
			// Messages differ across engine families (the logic engine
			// renders generic causes), so cross-family parity is on the
			// kind summary; the logic path also omits the proxy tail.
			if len(m.Proxies) == 0 && logic.Summary() != indexed.Summary() {
				t.Errorf("logic and indexed verdicts diverge:\n%s\nvs\n%s", logic.Summary(), indexed.Summary())
			}
			rep, err := spec.CheckContext(context.Background(),
				WithWorkers(4), WithEngine(EngineLogicRecursive))
			if err != nil {
				t.Fatal(err)
			}
			if got := rep.String(); got != recursive {
				t.Errorf("sharded recursive engine diverges:\n%s\nvs\n%s", got, recursive)
			}
		})
	}
}

// TestEngineParityNetsim triangulates the engines on generated
// internets: nested domains, injected frequency violations, and
// late-bound star targets.
func TestEngineParityNetsim(t *testing.T) {
	cases := []netsim.Params{
		{Domains: 12, SystemsPerDomain: 2, NestingDepth: 0, Seed: 1},
		{Domains: 10, SystemsPerDomain: 2, NestingDepth: 2, Seed: 2},
		{Domains: 10, SystemsPerDomain: 1, InconsistencyRate: 0.5, Seed: 3},
		{Domains: 6, SystemsPerDomain: 1, StarTargets: true, Seed: 4},
		{Domains: 8, SystemsPerDomain: 1, RecursiveChains: true, Seed: 5},
	}
	for i, p := range cases {
		m, err := netsim.Model(p)
		if err != nil {
			t.Fatal(err)
		}
		indexed := consistency.Check(m)
		logic := consistency.CheckLogic(m)
		recursive := consistency.CheckLogicRecursive(m).String()
		if logic.String() != recursive {
			t.Errorf("case %d: materialized vs recursive logic diverge:\n%s\nvs\n%s", i, logic, recursive)
		}
		if logic.Summary() != indexed.Summary() {
			t.Errorf("case %d: logic vs indexed verdicts diverge:\n%s\nvs\n%s", i, logic.Summary(), indexed.Summary())
		}
	}
}

// TestWarmCacheParityNetsim runs the full incremental pipeline on a
// generated internet with injected violations: warm-cache re-checks and
// CheckDelta replays must render identically to a cold check.
func TestWarmCacheParityNetsim(t *testing.T) {
	m, err := netsim.Model(netsim.Params{
		Domains: 200, SystemsPerDomain: 2, NestingDepth: 1,
		InconsistencyRate: 0.05, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	cold := consistency.Check(m)
	if cold.Consistent() {
		t.Fatal("expected injected violations")
	}

	cache := consistency.NewResultCache()
	chk := consistency.NewChecker(m)
	chk.Cache = cache
	if got := chk.Check().String(); got != cold.String() {
		t.Fatalf("cache-filling run diverges from cold check")
	}
	warm := consistency.NewChecker(m)
	warm.Cache = cache
	if got := warm.Check().String(); got != cold.String() {
		t.Fatalf("warm-cache run diverges from cold check")
	}
	if st := cache.Stats(); st.Hits != int64(len(m.Refs)) || st.Invalidations != 0 {
		t.Fatalf("warm stats %+v, want %d hits", st, len(m.Refs))
	}

	delta := &consistency.ModelDelta{Instances: []string{m.Refs[0].Source.ID}}
	if got := warm.CheckDelta(cold, delta).String(); got != cold.String() {
		t.Fatalf("CheckDelta diverges from cold check")
	}

	// The sharded checker shares the cache across workers.
	rep, err := consistency.CheckContext(context.Background(), m,
		consistency.Options{Workers: 8, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if rep.String() != cold.String() {
		t.Fatalf("sharded warm-cache run diverges from cold check")
	}
}

package nmsl

import (
	"os"
	"testing"
	"time"

	"nmsl/internal/consistency"
	"nmsl/internal/netsim"
)

// TestScaleCheck100kSmoke is the nightly §1-scale checking smoke: the
// 100,000-domain internet (200k elements, ~3.4M spec lines) is
// generated, compiled, cold-checked, and then re-checked incrementally
// after a single-instance change. Gated behind NMSL_SCALE so ordinary
// test runs (and small CI runners, which would swap) skip it; the
// nightly job exports the gate and runs it time-boxed via -timeout.
// The per-phase timings land in the test log for T-SCALE bookkeeping.
func TestScaleCheck100kSmoke(t *testing.T) {
	if os.Getenv("NMSL_SCALE") == "" {
		t.Skip("set NMSL_SCALE=1 to run the 100k-domain checking smoke")
	}
	t0 := time.Now()
	m, err := netsim.Model(netsim.Params{
		Domains: 100000, SystemsPerDomain: 2, NestingDepth: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	buildD := time.Since(t0)

	t1 := time.Now()
	chk := consistency.NewChecker(m)
	chk.Cache = consistency.NewResultCache()
	prev := chk.Check()
	coldD := time.Since(t1)
	if !prev.Consistent() {
		t.Fatalf("100k-domain internet inconsistent: %d violations", len(prev.Violations))
	}

	t2 := time.Now()
	delta := &consistency.ModelDelta{Instances: []string{m.Refs[0].Source.ID}}
	rep := chk.CheckDelta(prev, delta)
	warmD := time.Since(t2)
	if !rep.Consistent() {
		t.Fatalf("warm delta re-check inconsistent: %d violations", len(rep.Violations))
	}

	t.Logf("100k domains: %d instances, %d refs; compile+build %v, cold check %v, warm delta %v",
		len(m.Instances), len(m.Refs), buildD.Round(time.Millisecond),
		coldD.Round(time.Millisecond), warmD.Round(time.Millisecond))
}

// Package nmsl is a Go implementation of NMSL, the Network Management
// Specification Language of Cohrs & Miller, "Specification and
// Verification of Network Managers for Large Internets" (SIGCOMM 1989).
//
// NMSL addresses configuration management for very large, multi-domain
// internets with two coupled aspects:
//
//   - Descriptive: specifications describe management data types
//     (ASN.1-based), processes (agents and applications, their supported
//     data, exports and queries), network elements and administrative
//     domains. The Compiler parses them against the paper's generalized
//     grammar and the Consistency Checker proves that every data
//     reference has a corresponding permission — including access-mode
//     and frequency (timing) constraints — or reports the immediate
//     causes of inconsistency.
//
//   - Prescriptive: from a consistent specification, Configuration
//     Generators derive per-agent configuration (communities, view
//     subtrees, minimum query intervals) and ship it to running
//     management agents over files or the management protocol itself.
//
// The typical flow:
//
//	c := nmsl.NewCompiler()
//	_ = c.CompileSource("site.nmsl", source)
//	spec, err := c.Finish()
//	if err != nil { ... }                      // syntax/semantic errors
//	report := spec.Check()                     // consistency proof
//	if report.Consistent() {
//	    configs := spec.AgentConfigs()         // prescriptive output
//	}
//
// Extensions (the paper's NMSL/EXT) are added with AddExtensionSource
// before compiling. Output-specific compiler actions ("consistency",
// "BartsSnmpd", "nvp", or extension-defined tags) run via Generate.
package nmsl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"

	"nmsl/internal/ast"
	"nmsl/internal/audit"
	"nmsl/internal/changespec"
	"nmsl/internal/configgen"
	"nmsl/internal/consistency"
	"nmsl/internal/extension"
	"nmsl/internal/logic"
	"nmsl/internal/mib"
	"nmsl/internal/obs"
	"nmsl/internal/parser"
	"nmsl/internal/printer"
	"nmsl/internal/sema"
	"nmsl/internal/simrun"
	"nmsl/internal/snmp"
)

// Re-exported result types, so callers need only this package.
type (
	// Report is a consistency-check result.
	Report = consistency.Report
	// Violation is one immediate cause of inconsistency.
	Violation = consistency.Violation
	// Model is the checkable instance/reference/permission view.
	Model = consistency.Model
	// LoadReport estimates management traffic (the speculative role).
	LoadReport = consistency.LoadReport
	// LoadOptions tunes load estimation.
	LoadOptions = consistency.LoadOptions
	// Interval is an admissible-parameter interval from reverse solving.
	Interval = logic.Interval
	// AgentConfig is a generated agent configuration.
	AgentConfig = snmp.Config
	// Access is an NMSL access mode.
	Access = mib.Access
)

// Violation kinds (see consistency package for semantics).
const (
	KindNoPermission       = consistency.KindNoPermission
	KindAccessViolation    = consistency.KindAccessViolation
	KindFrequencyViolation = consistency.KindFrequencyViolation
	KindDomainRestriction  = consistency.KindDomainRestriction
	KindNoSupport          = consistency.KindNoSupport
	KindUnresolvedTarget   = consistency.KindUnresolvedTarget
)

// Access modes.
const (
	AccessAny       = mib.AccessAny
	AccessReadOnly  = mib.AccessReadOnly
	AccessWriteOnly = mib.AccessWriteOnly
	AccessNone      = mib.AccessNone
)

// Sentinel errors. Entry points that take caller-supplied names wrap
// these (AdmissiblePeriods, AuditAgent, Interop), so callers classify
// failures with errors.Is instead of matching message strings.
var (
	// ErrUnknownInstance: an instance ID names no instance.
	ErrUnknownInstance = consistency.ErrUnknownInstance
	// ErrUnresolvedName: a dotted MIB name does not resolve.
	ErrUnresolvedName = consistency.ErrUnresolvedName
	// ErrNotAgent: the instance exists but is not an agent.
	ErrNotAgent = consistency.ErrNotAgent
	// ErrFinished: the Compiler was used after Finish.
	ErrFinished = errors.New("nmsl: compiler already finished")
)

// CheckEngine selects the consistency evaluator for CheckContext.
type CheckEngine = consistency.Engine

// Check engines.
const (
	// EngineIndexed is the Go-side indexed checker (default; scales to
	// the paper's 10,000-domain goal).
	EngineIndexed = consistency.EngineIndexed
	// EngineLogic proves every reference through the CLP(R)-style logic
	// engine (the paper's reference semantics; slower but independent).
	// The containment and MIB closures are materialized as indexed fact
	// tables before solving.
	EngineLogic = consistency.EngineLogic
	// EngineLogicRecursive is EngineLogic over the paper's recursive
	// transitivity rules, without materialized closures — the parity
	// oracle; expect it to be much slower on deep hierarchies.
	EngineLogicRecursive = consistency.EngineLogicRecursive
)

// Incremental checking re-exports.
type (
	// CheckCache memoizes per-reference verdicts across runs, keyed by
	// dependency fingerprints. Attach with WithCache or pass to
	// CheckDelta; persist with its SaveFile/LoadFile.
	CheckCache = consistency.ResultCache
	// CacheStats is a snapshot of a CheckCache's counters.
	CacheStats = consistency.CacheStats
	// ModelDelta names the declarations an edit touched, for CheckDelta.
	ModelDelta = consistency.ModelDelta
)

// NewCheckCache returns an empty verdict cache.
func NewCheckCache() *CheckCache { return consistency.NewResultCache() }

// Change-contract re-exports (Rela-style relational change
// verification; see internal/changespec).
type (
	// ChangeContract bounds what a specification edit may do: scope,
	// no widened access, no relaxed frequency bounds, instance and
	// permission churn limits.
	ChangeContract = changespec.Contract
	// ChangeViolation is one violated contract clause with the
	// offending delta entry.
	ChangeViolation = changespec.ContractViolation
	// ChangeResult is one contract evaluation over one edit.
	ChangeResult = changespec.Result
	// ChangeContractError aggregates a contract's violations; rollout
	// and CLI callers match it with errors.As.
	ChangeContractError = changespec.ContractError
)

// ParseChangeContracts parses change-contract source text
// (conventionally a .ncs file) into contracts for VerifyChange and
// configgen.WithChangeContract.
func ParseChangeContracts(name, src string) ([]*ChangeContract, error) {
	return changespec.Parse(name, src)
}

// VerifyChange evaluates contracts against the edit from old to s (the
// proposed revision), returning the computed delta and one result per
// contract. The evaluation is delta-scoped: on a small edit of a large
// internet it costs about as much as an incremental re-check.
func (s *Specification) VerifyChange(old *Specification, contracts ...*ChangeContract) (*ModelDelta, []*ChangeResult) {
	var oldModel *consistency.Model
	var delta *ModelDelta
	if old != nil {
		oldModel = old.model
		delta = DiffSpecs(old, s)
	}
	k := changespec.NewChecker(oldModel, s.model)
	results := make([]*ChangeResult, 0, len(contracts))
	for _, c := range contracts {
		results = append(results, k.Check(delta, c))
	}
	return delta, results
}

// DiffSpecs diffs two compiled specifications into a ModelDelta for
// CheckDelta. Position-only differences (reformatting) yield an empty
// delta; type-declaration changes mark the MIB changed, which forces a
// full re-check.
func DiffSpecs(old, new *Specification) *ModelDelta {
	return consistency.DeltaFromSpecs(old.spec, new.spec)
}

// CheckOption configures Specification.CheckContext.
type CheckOption func(*consistency.Options)

// WithWorkers bounds the check's worker pool. n <= 0 (the default)
// selects one worker per CPU.
func WithWorkers(n int) CheckOption {
	return func(o *consistency.Options) { o.Workers = n }
}

// WithEngine selects the evaluator: EngineIndexed (default) or
// EngineLogic.
func WithEngine(e CheckEngine) CheckOption {
	return func(o *consistency.Options) { o.Engine = e }
}

// WithOnViolation streams every violation to fn as it is found, before
// the Report is assembled — on 10,000-domain inputs the caller sees
// causes immediately instead of after the full scan. Invocations are
// serialized, but their order across shards is scheduling-dependent;
// only the Report ordering is deterministic.
func WithOnViolation(fn func(Violation)) CheckOption {
	return func(o *consistency.Options) { o.OnViolation = fn }
}

// WithFailFast stops the check once any violation has been recorded.
// The Report then holds at least one violation but is partial.
func WithFailFast() CheckOption {
	return func(o *consistency.Options) { o.FailFast = true }
}

// WithCache memoizes per-reference verdicts in c across runs (indexed
// engine only). A verdict is replayed only when the SHA-256 fingerprint
// of everything it depends on — the reference tuple, the target's
// support views, both parties' containment ancestry and the candidate
// permissions — is unchanged, so replays are always sound. Long-lived
// callers should bound the cache with CheckCache.SetMaxEntries, which
// trims least-recently-used verdicts past the cap (always enforced
// before SaveFile persists it).
func WithCache(c *CheckCache) CheckOption {
	return func(o *consistency.Options) { o.Cache = c }
}

// Observability re-exports, mirroring configgen's WithMetrics so the
// checker and the rollout share one convention: nil (the default)
// records into the process-wide default registry, MetricsDisabled turns
// instrumentation off entirely.
type (
	// MetricsRegistry collects counters, gauges and histograms
	// (internal/obs.Registry).
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time registry snapshot, embedded in
	// Report.Metrics and RolloutReport.Metrics.
	MetricsSnapshot = obs.Snapshot
)

// MetricsDisabled is the sentinel registry that disables
// instrumentation (including its clock reads).
var MetricsDisabled = obs.Disabled

// WithMetrics selects where the check's observability counters land:
// nil (the default) records into the default registry, MetricsDisabled
// turns instrumentation off. The run's own numbers are embedded in
// Report.Metrics unless disabled. This is the checker-side twin of
// configgen.WithMetrics.
func WithMetrics(reg *MetricsRegistry) CheckOption {
	return func(o *consistency.Options) { o.Metrics = reg }
}

// Output tags built into the compiler.
const (
	// OutputConsistency emits the logic facts of the descriptive aspect.
	OutputConsistency = consistency.OutputTag
	// OutputBartsSnmpd emits snmpd.conf-style configuration.
	OutputBartsSnmpd = configgen.TagBartsSnmpd
	// OutputNVP emits JSON name/value configuration.
	OutputNVP = configgen.TagNVP
)

// Compiler drives the two-pass NMSL compiler with the basic language and
// any installed extensions.
type Compiler struct {
	analyzer *sema.Analyzer
	finished bool
}

// NewCompiler returns a Compiler with the basic language and the built-in
// output actions (consistency, BartsSnmpd, nvp) installed.
func NewCompiler() *Compiler {
	a := sema.NewAnalyzer()
	consistency.RegisterOutput(a.Tables())
	configgen.RegisterOutput(a.Tables())
	return &Compiler{analyzer: a}
}

// AddExtensionSource installs NMSL/EXT extension declarations. Must be
// called before CompileSource for clauses the extension defines, and
// returns ErrFinished after Finish.
func (c *Compiler) AddExtensionSource(name, src string) error {
	if c.finished {
		return fmt.Errorf("%w: cannot add extension %q", ErrFinished, name)
	}
	exts, err := extension.ParseFile(name, src)
	if err != nil {
		return err
	}
	extension.InstallAll(c.analyzer.Tables(), exts)
	return nil
}

// CompileSource parses and analyzes one specification source. Syntax
// errors are returned immediately; semantic errors accumulate and are
// reported by Finish. After Finish the analyzer is sealed and
// CompileSource returns ErrFinished.
func (c *Compiler) CompileSource(name, src string) error {
	if c.finished {
		return fmt.Errorf("%w: cannot compile %q", ErrFinished, name)
	}
	f, err := parser.Parse(name, src)
	if err != nil {
		return err
	}
	c.analyzer.AnalyzeFile(f)
	return nil
}

// CompileFile reads and compiles a specification file.
func (c *Compiler) CompileFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return c.CompileSource(path, string(data))
}

// Finish links the compiled declarations and returns the Specification.
// The returned error aggregates all semantic errors. Finish seals the
// Compiler: further CompileSource/AddExtensionSource calls (and a second
// Finish) return ErrFinished.
func (c *Compiler) Finish() (*Specification, error) {
	if c.finished {
		return nil, ErrFinished
	}
	spec, err := c.analyzer.Finish()
	c.finished = true
	if err != nil {
		return nil, err
	}
	return &Specification{
		spec:     spec,
		analyzer: c.analyzer,
		model:    consistency.BuildModel(spec),
	}, nil
}

// Specification is a compiled, linked NMSL specification.
type Specification struct {
	spec     *ast.Spec
	analyzer *sema.Analyzer
	model    *consistency.Model
}

// AST exposes the typed specification model.
func (s *Specification) AST() *ast.Spec { return s.spec }

// Model exposes the consistency model (instances, references,
// permissions).
func (s *Specification) Model() *Model { return s.model }

// CheckContext runs the consistency check over a bounded worker pool,
// honoring ctx for cancellation and deadline:
//
//	rep, err := spec.CheckContext(ctx,
//	    nmsl.WithWorkers(8),
//	    nmsl.WithOnViolation(func(v nmsl.Violation) { log.Print(v) }))
//
// The model's references are partitioned into shards aligned to target
// instances and checked concurrently; a completed run returns a Report
// byte-identical to the serial checker regardless of worker count. When
// ctx is cancelled mid-check, the partial Report is returned together
// with ctx.Err(). This is the one entry point behind which the older
// Check/CheckLogic split is unified (see WithEngine).
func (s *Specification) CheckContext(ctx context.Context, opts ...CheckOption) (*Report, error) {
	var o consistency.Options
	for _, opt := range opts {
		opt(&o)
	}
	return consistency.CheckContext(ctx, s.model, o)
}

// Check runs the indexed consistency checker serially: one worker, no
// cancellation, metrics off. The Report is identical to
// CheckContext's.
//
// Deprecated: use CheckContext, which adds cancellation, streaming,
// parallelism and caching; Check remains as a thin shim over it.
func (s *Specification) Check() *Report {
	rep, _ := s.CheckContext(context.Background(),
		WithWorkers(1), WithMetrics(MetricsDisabled))
	return rep
}

// CheckDelta re-checks the specification after an edit described by
// delta (typically from DiffSpecs against the previous revision),
// reusing prev — the previous revision's full Report — for references
// the edit cannot have influenced. cache, when non-nil, additionally
// memoizes the re-evaluated references by dependency fingerprint. The
// returned Report is identical to a full Check; on a one-declaration
// edit of a large specification it arrives an order of magnitude faster.
func (s *Specification) CheckDelta(prev *Report, delta *ModelDelta, cache *CheckCache) *Report {
	if prev != nil {
		// Growth path: when prev belongs to the pre-edit revision, adopt
		// the parts of its columnar tables the delta provably left
		// unchanged instead of re-interning them (columns.go).
		s.model.SeedColumnsFrom(prev.Model, delta)
	}
	chk := consistency.NewChecker(s.model)
	chk.Cache = cache
	return chk.CheckDelta(prev, delta)
}

// CheckLogic runs the consistency check through the CLP(R)-style logic
// engine (the paper's reference semantics; slower but independent).
//
// Deprecated: use CheckContext with WithEngine(EngineLogic), which adds
// cancellation, streaming and parallelism; CheckLogic remains as a thin
// shim over it.
func (s *Specification) CheckLogic() *Report {
	rep, _ := s.CheckContext(context.Background(),
		WithWorkers(1), WithEngine(EngineLogic), WithMetrics(MetricsDisabled))
	return rep
}

// CheckLogicRecursive runs the logic engine over the paper's recursive
// transitivity rules without materialized closures — the parity oracle.
//
// Deprecated: use CheckContext with WithEngine(EngineLogicRecursive);
// CheckLogicRecursive remains as a thin shim over it.
func (s *Specification) CheckLogicRecursive() *Report {
	rep, _ := s.CheckContext(context.Background(),
		WithWorkers(1), WithEngine(EngineLogicRecursive), WithMetrics(MetricsDisabled))
	return rep
}

// Generate runs the output-specific compiler actions for tag into w
// (paper section 6.2).
func (s *Specification) Generate(tag string, w io.Writer) error {
	return s.analyzer.Generate(tag, w)
}

// WriteConsistencyProgram writes the complete logic program the checker
// evaluates: derived facts plus the consistency rules, in Prolog/CLP(R)
// notation.
func (s *Specification) WriteConsistencyProgram(w io.Writer) error {
	if err := consistency.WriteFacts(w, s.model); err != nil {
		return err
	}
	return consistency.WriteRules(w)
}

// AgentConfigs derives per-agent-instance configurations (the
// prescriptive aspect). Keys are instance IDs such as
// "snmpdReadOnly@romano.cs.wisc.edu#0".
func (s *Specification) AgentConfigs() map[string]*AgentConfig {
	return configgen.Generate(s.model)
}

// EstimateLoad estimates steady-state management traffic (the checker's
// speculative role, section 4.2).
func (s *Specification) EstimateLoad(opts LoadOptions) *LoadReport {
	return consistency.EstimateLoad(s.model, opts)
}

// AdmissiblePeriods solves the consistency check in reverse: the query
// periods at which a prospective reference from srcInstance to data
// varPath on tgtInstance would be consistent (section 4.2).
func (s *Specification) AdmissiblePeriods(srcInstance, tgtInstance, varPath string, access Access) ([]Interval, error) {
	node := s.spec.MIB.LookupSuffix(varPath)
	if node == nil {
		return nil, fmt.Errorf("nmsl: MIB name %q: %w", varPath, ErrUnresolvedName)
	}
	if s.model.InstanceByID(srcInstance) == nil {
		return nil, fmt.Errorf("nmsl: source instance %q: %w", srcInstance, ErrUnknownInstance)
	}
	if s.model.InstanceByID(tgtInstance) == nil {
		return nil, fmt.Errorf("nmsl: target instance %q: %w", tgtInstance, ErrUnknownInstance)
	}
	return consistency.AdmissiblePeriods(s.model, srcInstance, tgtInstance, node, access), nil
}

// FormatIntervals renders an interval set, e.g. "[300, +inf)".
func FormatIntervals(ivs []Interval) string { return consistency.FormatIntervals(ivs) }

// Audit-related re-exports.
type (
	// AuditReport is the result of probing one live agent for adherence.
	AuditReport = audit.Report
	// AuditOptions tunes audit probing.
	AuditOptions = audit.Options
	// InteropReport is the result of driving every specified reference
	// against the live fleet.
	InteropReport = audit.InteropReport
)

// AuditAgent verifies that the running agent at addr adheres to what the
// specification prescribes for instance instID (the paper's "verifying
// that these specifications are actually being adhered to in the
// network").
func (s *Specification) AuditAgent(instID, addr string, opts AuditOptions) (*AuditReport, error) {
	return audit.Agent(s.model, instID, addr, opts)
}

// AuditAgentContext is AuditAgent under a context: probing stops as soon
// as ctx is done, returning the partial report with the context's error.
func (s *Specification) AuditAgentContext(ctx context.Context, instID, addr string, opts AuditOptions) (*AuditReport, error) {
	return audit.AgentContext(ctx, s.model, instID, addr, opts)
}

// Interop drives every reference of the specification against the live
// agents in addrs (instance ID -> host:port) and reports the references
// that fail — the empirical answer to "will the network managers
// interoperate correctly?".
func (s *Specification) Interop(addrs map[string]string, opts AuditOptions) (*InteropReport, error) {
	return audit.Interop(s.model, addrs, opts)
}

// InteropContext is Interop under a context: the sweep stops as soon as
// ctx is done, returning the partial report with the context's error.
func (s *Specification) InteropContext(ctx context.Context, addrs map[string]string, opts AuditOptions) (*InteropReport, error) {
	return audit.InteropContext(ctx, s.model, addrs, opts)
}

// Format renders the specification in canonical NMSL source form.
func (s *Specification) Format(w io.Writer) error {
	return printer.Fprint(w, s.spec)
}

// Simulation re-exports.
type (
	// SimOptions configure a virtual-time simulation run.
	SimOptions = simrun.Options
	// SimResult is a simulation outcome.
	SimResult = simrun.Result
)

// Simulate executes the specified internet over virtual time: in-process
// agents are configured per the specification and every reference issues
// queries at its declared frequency. The result accounts for every
// acceptance, rate contention and violation.
func (s *Specification) Simulate(opts SimOptions) (*SimResult, error) {
	return simrun.Run(s.model, opts)
}

// CheckSource is the one-shot convenience: compile a single source and
// check it.
func CheckSource(name, src string) (*Report, error) {
	c := NewCompiler()
	if err := c.CompileSource(name, src); err != nil {
		return nil, err
	}
	spec, err := c.Finish()
	if err != nil {
		return nil, err
	}
	return spec.Check(), nil
}

// nmslload is the synthetic many-tenant load generator for nmsld
// (experiment E-SVC-1, make svc-smoke).
//
// It installs N tenants — each a distinct synthetic internet from
// internal/netsim — cold-checks each one, then drives sustained
// delta-checks from concurrent workers, measuring throughput and warm
// latency percentiles over the wire. Every report is verified against
// the tenant's expected violation count, so the run doubles as a
// cross-tenant isolation check: a verdict bleeding between tenants
// shows up as a wrong count.
//
// Usage:
//
//	nmslload [-addr a] [-tenants n] [-domains n] [-systems n]
//	         [-duration d] [-conc n] [-out BENCH_svc.json]
//
// With no -addr it spins up an in-process daemon on a loopback port,
// so a load run needs no prior setup. -out writes the measured
// LoadResult as JSON (the contract consumed by scripts/slogate).
//
// Exit status: 0 on success, 1 when any report had the wrong violation
// count or any request errored, 2 on usage/setup errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"time"

	"nmsl/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nmslload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "", "daemon base URL (empty = in-process daemon)")
	tenants := fs.Int("tenants", 64, "number of tenants to install and drive")
	domains := fs.Int("domains", 4, "domains per tenant")
	systems := fs.Int("systems", 4, "systems per domain")
	duration := fs.Duration("duration", 3*time.Second, "sustained delta-check phase length")
	conc := fs.Int("conc", 8, "concurrent client workers")
	out := fs.String("out", "", "write the measured LoadResult JSON here")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := service.LoadConfig{
		BaseURL:          *addr,
		Tenants:          *tenants,
		DomainsPerTenant: *domains,
		SystemsPerDomain: *systems,
		Duration:         *duration,
		Conc:             *conc,
	}
	if cfg.BaseURL == "" {
		svc, err := service.New()
		if err != nil {
			fmt.Fprintf(stderr, "nmslload: %v\n", err)
			return 2
		}
		defer svc.Close()
		ts := httptest.NewServer(svc.Handler())
		defer ts.Close()
		cfg.BaseURL = ts.URL
		cfg.Client = ts.Client()
		fmt.Fprintf(stdout, "nmslload: in-process daemon at %s\n", ts.URL)
	} else {
		cfg.Client = http.DefaultClient
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := service.RunLoad(ctx, cfg)
	if err != nil {
		fmt.Fprintf(stderr, "nmslload: %v\n", err)
		return 2
	}

	fmt.Fprintf(stdout,
		"nmslload: %d tenants, %d cold + %d delta checks in %.1fs (%.0f checks/s)\n",
		res.Tenants, res.ColdChecks, res.DeltaChecks, res.DurationSec, res.ChecksPerSec)
	fmt.Fprintf(stdout, "nmslload: warm latency p50=%s p90=%s p99=%s\n",
		time.Duration(res.WarmP50NS), time.Duration(res.WarmP90NS), time.Duration(res.WarmP99NS))
	fmt.Fprintf(stdout, "nmslload: cache hits=%d misses=%d; rate-limited=%d busy=%d errors=%d\n",
		res.CacheHitsEnd, res.CacheMissEnd, res.RateLimited, res.Busy, res.Errors)
	if !res.ViolationsOK {
		fmt.Fprintln(stderr, "nmslload: VIOLATION COUNT MISMATCH — cross-tenant interference or checker regression")
	}

	if *out != "" {
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "nmslload: %v\n", err)
			return 2
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fmt.Fprintf(stderr, "nmslload: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "nmslload: wrote %s\n", *out)
	}
	if !res.ViolationsOK || res.Errors > 0 {
		return 1
	}
	return 0
}

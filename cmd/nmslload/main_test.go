package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nmsl/internal/service"
)

// TestLoadRunWritesBench drives a small in-process load run and checks
// the BENCH_svc.json contract.
func TestLoadRunWritesBench(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_svc.json")
	var stdout, stderr strings.Builder
	code := run([]string{
		"-tenants", "4", "-domains", "2", "-systems", "2",
		"-duration", "300ms", "-conc", "2", "-out", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var res service.LoadResult
	if err := json.Unmarshal(blob, &res); err != nil {
		t.Fatal(err)
	}
	if res.Tenants != 4 || res.ColdChecks != 4 || res.DeltaChecks == 0 {
		t.Fatalf("bad result: %+v", res)
	}
	if !res.ViolationsOK || res.Errors != 0 {
		t.Fatalf("load run unhealthy: %+v", res)
	}
	if !strings.Contains(stdout.String(), "checks/s") {
		t.Fatalf("summary missing: %q", stdout.String())
	}
}

func TestLoadBadFlags(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nmsl/internal/paperspec"
)

func TestFormatToStdout(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.nmsl")
	if err := os.WriteFile(path, []byte(paperspec.Combined), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	if code := run([]string{path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), `system "romano.cs.wisc.edu" ::=`) {
		t.Fatalf("output: %q", out.String())
	}
}

func TestFormatInPlaceIsIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.nmsl")
	if err := os.WriteFile(path, []byte(paperspec.Combined), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	if code := run([]string{"-w", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-w", path}, &out, &errb); code != 0 {
		t.Fatalf("second pass exit: %s", errb.String())
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatal("formatting is not idempotent")
	}
}

func TestFormatErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no files: exit %d", code)
	}
	if code := run([]string{"/missing.nmsl"}, &out, &errb); code != 1 {
		t.Errorf("missing file: exit %d", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.nmsl")
	if err := os.WriteFile(bad, []byte("domain d ::="), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{bad}, &out, &errb); code != 1 {
		t.Errorf("syntax error: exit %d", code)
	}
}

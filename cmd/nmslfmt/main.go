// nmslfmt formats NMSL specifications into canonical form: declarations
// sorted by kind then name, one clause per line, normalized spacing.
//
// Usage:
//
//	nmslfmt spec.nmsl ...         # print formatted source to stdout
//	nmslfmt -w spec.nmsl ...      # rewrite files in place
//
// Formatting requires the input to compile (the canonical form is
// printed from the typed model), so nmslfmt doubles as a syntax and
// semantics checker.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nmsl/internal/parser"
	"nmsl/internal/printer"
	"nmsl/internal/sema"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nmslfmt", flag.ContinueOnError)
	fs.SetOutput(stderr)
	write := fs.Bool("w", false, "write result back to the source files")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "nmslfmt: no files")
		return 2
	}
	status := 0
	for _, path := range fs.Args() {
		if err := formatFile(path, *write, stdout); err != nil {
			fmt.Fprintf(stderr, "nmslfmt: %v\n", err)
			status = 1
		}
	}
	return status
}

func formatFile(path string, write bool, stdout io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	f, err := parser.Parse(path, string(data))
	if err != nil {
		return err
	}
	a := sema.NewAnalyzer()
	a.AnalyzeFile(f)
	spec, err := a.Finish()
	if err != nil {
		return err
	}
	out := printer.String(spec)
	if write {
		return os.WriteFile(path, []byte(out), 0o644)
	}
	_, err = io.WriteString(stdout, out)
	return err
}

package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nmsl/internal/mib"
	"nmsl/internal/paperspec"
	"nmsl/internal/snmp"
)

func specFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.nmsl")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPrintConfigs(t *testing.T) {
	var out, errb strings.Builder
	code := run(context.Background(), []string{specFile(t, paperspec.Combined)}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "community public ReadOnly 300") {
		t.Fatalf("output: %q", out.String())
	}
}

func TestWriteDir(t *testing.T) {
	dir := t.TempDir()
	var out, errb strings.Builder
	code := run(context.Background(), []string{"-dir", dir, specFile(t, paperspec.Combined)}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("files: %v", entries)
	}
}

func TestNVPTarget(t *testing.T) {
	var out, errb strings.Builder
	code := run(context.Background(), []string{"-target", "nvp", "-instance", "snmpdReadOnly@romano.cs.wisc.edu#0",
		specFile(t, paperspec.Combined)}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), `"communities"`) {
		t.Fatalf("output: %q", out.String())
	}
}

func TestRefusesInconsistentSpec(t *testing.T) {
	src := `
process agent ::= supports mgmt.mib; end process agent.
process poller ::= queries agent requests mgmt.mib.system frequency infrequent; end process poller.
system "h" ::=
    cpu sparc; interface ie0 net l type e speed 10 bps;
    supports mgmt.mib; process agent; process poller;
end system "h".
domain d ::= system h; end domain d.
`
	var out, errb strings.Builder
	if code := run(context.Background(), []string{specFile(t, src)}, &out, &errb); code != 1 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(errb.String(), "inconsistent") {
		t.Fatalf("stderr: %q", errb.String())
	}
}

func TestLiveInstall(t *testing.T) {
	store := snmp.NewStore()
	snmp.PopulateFromMIB(store, mib.NewStandard(), "mgmt.mib")
	agent := snmp.NewAgent(store, &snmp.Config{
		Communities:    map[string]*snmp.CommunityConfig{},
		AdminCommunity: "adm",
	})
	addr, err := agent.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	var out, errb strings.Builder
	code := run(context.Background(), []string{
		"-install", addr.String(), "-admin", "adm",
		"-instance", "snmpdReadOnly@romano.cs.wisc.edu#0",
		specFile(t, paperspec.Combined)}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if agent.ConfigSnapshot().Communities["public"] == nil {
		t.Fatal("config not installed")
	}
}

func TestInstallErrors(t *testing.T) {
	path := specFile(t, paperspec.Combined)
	var out, errb strings.Builder
	if code := run(context.Background(), []string{"-install", "127.0.0.1:1", path}, &out, &errb); code != 2 {
		t.Errorf("missing -instance: exit %d", code)
	}
	if code := run(context.Background(), []string{"-install", "127.0.0.1:1", "-instance", "ghost", path}, &out, &errb); code != 1 {
		t.Errorf("unknown instance: exit %d", code)
	}
	if code := run(context.Background(), []string{"-target", "weird", path}, &out, &errb); code != 2 {
		t.Errorf("unknown target: exit %d", code)
	}
	if code := run(context.Background(), nil, &out, &errb); code != 2 {
		t.Errorf("no files: exit %d", code)
	}
}

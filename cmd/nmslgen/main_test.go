package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nmsl/internal/mib"
	"nmsl/internal/netsim"
	"nmsl/internal/paperspec"
	"nmsl/internal/snmp"
)

func specFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.nmsl")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPrintConfigs(t *testing.T) {
	var out, errb strings.Builder
	code := run(context.Background(), []string{specFile(t, paperspec.Combined)}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "community public ReadOnly 300") {
		t.Fatalf("output: %q", out.String())
	}
}

func TestWriteDir(t *testing.T) {
	dir := t.TempDir()
	var out, errb strings.Builder
	code := run(context.Background(), []string{"-dir", dir, specFile(t, paperspec.Combined)}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("files: %v", entries)
	}
}

func TestNVPTarget(t *testing.T) {
	var out, errb strings.Builder
	code := run(context.Background(), []string{"-target", "nvp", "-instance", "snmpdReadOnly@romano.cs.wisc.edu#0",
		specFile(t, paperspec.Combined)}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), `"communities"`) {
		t.Fatalf("output: %q", out.String())
	}
}

func TestRefusesInconsistentSpec(t *testing.T) {
	src := `
process agent ::= supports mgmt.mib; end process agent.
process poller ::= queries agent requests mgmt.mib.system frequency infrequent; end process poller.
system "h" ::=
    cpu sparc; interface ie0 net l type e speed 10 bps;
    supports mgmt.mib; process agent; process poller;
end system "h".
domain d ::= system h; end domain d.
`
	var out, errb strings.Builder
	if code := run(context.Background(), []string{specFile(t, src)}, &out, &errb); code != 1 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(errb.String(), "inconsistent") {
		t.Fatalf("stderr: %q", errb.String())
	}
}

func TestLiveInstall(t *testing.T) {
	store := snmp.NewStore()
	snmp.PopulateFromMIB(store, mib.NewStandard(), "mgmt.mib")
	agent := snmp.NewAgent(store, &snmp.Config{
		Communities:    map[string]*snmp.CommunityConfig{},
		AdminCommunity: "adm",
	})
	addr, err := agent.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	var out, errb strings.Builder
	code := run(context.Background(), []string{
		"-install", addr.String(), "-admin", "adm",
		"-instance", "snmpdReadOnly@romano.cs.wisc.edu#0",
		specFile(t, paperspec.Combined)}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if agent.ConfigSnapshot().Communities["public"] == nil {
		t.Fatal("config not installed")
	}
}

func TestInstallErrors(t *testing.T) {
	path := specFile(t, paperspec.Combined)
	var out, errb strings.Builder
	if code := run(context.Background(), []string{"-install", "127.0.0.1:1", path}, &out, &errb); code != 2 {
		t.Errorf("missing -instance: exit %d", code)
	}
	if code := run(context.Background(), []string{"-install", "127.0.0.1:1", "-instance", "ghost", path}, &out, &errb); code != 1 {
		t.Errorf("unknown instance: exit %d", code)
	}
	if code := run(context.Background(), []string{"-target", "weird", path}, &out, &errb); code != 2 {
		t.Errorf("unknown target: exit %d", code)
	}
	if code := run(context.Background(), nil, &out, &errb); code != 2 {
		t.Errorf("no files: exit %d", code)
	}
}

// TestJournaledInstallAndRollback drives the transactional flags end to
// end: a journaled install lands the config, -rollback restores the
// agent's pre-image from the journal.
func TestJournaledInstallAndRollback(t *testing.T) {
	store := snmp.NewStore()
	snmp.PopulateFromMIB(store, mib.NewStandard(), "mgmt.mib")
	agent := snmp.NewAgent(store, &snmp.Config{
		Communities:    map[string]*snmp.CommunityConfig{},
		AdminCommunity: "adm",
	})
	addr, err := agent.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	preDigest := agent.ConfigSnapshot().Digest()
	journal := filepath.Join(t.TempDir(), "run.journal")

	var out, errb strings.Builder
	code := run(context.Background(), []string{
		"-install", addr.String(), "-admin", "adm",
		"-instance", "snmpdReadOnly@romano.cs.wisc.edu#0",
		"-journal", journal,
		specFile(t, paperspec.Combined)}, &out, &errb)
	if code != 0 {
		t.Fatalf("journaled install exit %d: %s", code, errb.String())
	}
	if agent.ConfigSnapshot().Communities["public"] == nil {
		t.Fatal("config not installed")
	}
	if _, err := os.Stat(journal); err != nil {
		t.Fatalf("journal not written: %v", err)
	}

	out.Reset()
	errb.Reset()
	code = run(context.Background(), []string{"-journal", journal, "-rollback"}, &out, &errb)
	if code != 0 {
		t.Fatalf("rollback exit %d: %s", code, errb.String())
	}
	if got := agent.ConfigSnapshot().Digest(); got != preDigest {
		t.Fatalf("rollback left digest %.12s, want pre-image %.12s", got, preDigest)
	}
	if !strings.Contains(out.String(), "restored 1 target") {
		t.Fatalf("output: %q", out.String())
	}
}

// TestTargetsFileInstall rolls out to a fleet described by -targets.
func TestTargetsFileInstall(t *testing.T) {
	store := snmp.NewStore()
	snmp.PopulateFromMIB(store, mib.NewStandard(), "mgmt.mib")
	agent := snmp.NewAgent(store, &snmp.Config{
		Communities:    map[string]*snmp.CommunityConfig{},
		AdminCommunity: "adm",
	})
	addr, err := agent.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	fleet := filepath.Join(t.TempDir(), "fleet.txt")
	line := "snmpdReadOnly@romano.cs.wisc.edu#0 " + addr.String() + " adm\n"
	if err := os.WriteFile(fleet, []byte("# fleet\n"+line), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	code := run(context.Background(), []string{
		"-targets", fleet,
		specFile(t, paperspec.Combined)}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if agent.ConfigSnapshot().Communities["public"] == nil {
		t.Fatal("config not installed via targets file")
	}
	if !strings.Contains(out.String(), "installed 1 target") {
		t.Fatalf("output: %q", out.String())
	}
}

// TestContractGatesRollout arms the change-contract pre-gate on a live
// install: an out-of-scope edit is refused before any datagram, and a
// ring-wide contract lets the same edit through to the agent.
func TestContractGatesRollout(t *testing.T) {
	p := netsim.Params{Domains: 3, SystemsPerDomain: 1, Seed: 5}
	base := netsim.Source(p)
	anchor := "queries agentT0\n        requests mgmt.mib.system.sysDescr\n        frequency >= 5 minutes;"
	if strings.Count(base, anchor) != 1 {
		t.Fatal("edit anchor not unique in netsim source")
	}
	edited := strings.Replace(base, anchor,
		strings.Replace(anchor, ">= 5 minutes", ">= 10 minutes", 1), 1)

	dir := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	basePath := write("base.nmsl", base)
	newPath := write("new.nmsl", edited)
	scoped := write("gate.ncs", "contract only-dom0 ::=\n    scope dom0;\nend contract only-dom0.\n")
	ringWide := write("wide.ncs", "contract ring-wide ::=\n    scope public;\n    forbid widen-access;\nend contract ring-wide.\n")

	store := snmp.NewStore()
	snmp.PopulateFromMIB(store, mib.NewStandard(), "mgmt.mib")
	agent := snmp.NewAgent(store, &snmp.Config{
		Communities:    map[string]*snmp.CommunityConfig{},
		AdminCommunity: "adm",
	})
	addr, err := agent.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	var out, errb strings.Builder
	code := run(context.Background(), []string{
		"-install", addr.String(), "-admin", "adm", "-instance", "agentT0@sys-0-0#0",
		"-contract", scoped, "-baseline", basePath, newPath}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "rollout refused") || !strings.Contains(errb.String(), "outside contract scope") {
		t.Fatalf("stderr: %q", errb.String())
	}
	if n := agent.Stats().ConfigLoads; n != 0 {
		t.Fatalf("refused rollout loaded %d configs, want 0", n)
	}

	out.Reset()
	errb.Reset()
	code = run(context.Background(), []string{
		"-install", addr.String(), "-admin", "adm", "-instance", "agentT0@sys-0-0#0",
		"-contract", ringWide, "-baseline", basePath, newPath}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s%s", code, out.String(), errb.String())
	}
	if n := agent.Stats().ConfigLoads; n != 1 {
		t.Fatalf("permitted rollout loaded %d configs, want 1", n)
	}

	// Usage errors: -contract without -baseline, -contract with -resume.
	if code := run(context.Background(), []string{
		"-install", "127.0.0.1:1", "-instance", "agentT0@sys-0-0#0",
		"-contract", scoped, newPath}, &out, &errb); code != 2 {
		t.Errorf("-contract without -baseline: exit %d", code)
	}
	if code := run(context.Background(), []string{
		"-resume", "-journal", filepath.Join(dir, "none.journal"),
		"-contract", scoped, "-baseline", basePath, newPath}, &out, &errb); code != 2 {
		t.Errorf("-contract with -resume: exit %d", code)
	}
}

// TestTransactionalFlagErrors pins the usage errors of the new flags.
func TestTransactionalFlagErrors(t *testing.T) {
	path := specFile(t, paperspec.Combined)
	var out, errb strings.Builder
	if code := run(context.Background(), []string{"-rollback"}, &out, &errb); code != 2 {
		t.Errorf("-rollback without -journal: exit %d", code)
	}
	if code := run(context.Background(), []string{"-resume", path}, &out, &errb); code != 2 {
		t.Errorf("-resume without -journal: exit %d", code)
	}
	if code := run(context.Background(), []string{
		"-install", "127.0.0.1:1", "-instance", "x", "-canary", "bogus", path}, &out, &errb); code != 2 {
		t.Errorf("bad -canary: exit %d", code)
	}
	if code := run(context.Background(), []string{
		"-install", "127.0.0.1:1", "-instance", "snmpdReadOnly@romano.cs.wisc.edu#0",
		"-canary", "0.9,0.2", path}, &out, &errb); code != 1 {
		t.Errorf("decreasing -canary fractions: exit %d", code)
	}
}

package main

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	apiv1 "nmsl/api/v1"
	"nmsl/internal/mib"
	"nmsl/internal/paperspec"
	"nmsl/internal/snmp"
)

// TestJSONRolloutReport proves -json emits the api/v1 rollout document
// — the same shape nmsld serves — instead of the prose summary.
func TestJSONRolloutReport(t *testing.T) {
	store := snmp.NewStore()
	snmp.PopulateFromMIB(store, mib.NewStandard(), "mgmt.mib")
	agent := snmp.NewAgent(store, &snmp.Config{
		Communities:    map[string]*snmp.CommunityConfig{},
		AdminCommunity: "adm",
	})
	addr, err := agent.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	var out, errb strings.Builder
	code := run(context.Background(), []string{
		"-install", addr.String(), "-admin", "adm",
		"-instance", "snmpdReadOnly@romano.cs.wisc.edu#0",
		"-json",
		specFile(t, paperspec.Combined)}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	var rep apiv1.RolloutReport
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("stdout is not an api/v1 rollout report: %v\n%s", err, out.String())
	}
	if rep.APIVersion != apiv1.Version || !rep.OK || rep.Installed != 1 {
		t.Fatalf("bad report: %+v", rep)
	}
	if len(rep.Targets) != 1 || rep.Targets[0].Status != "installed" {
		t.Fatalf("bad targets: %+v", rep.Targets)
	}
}

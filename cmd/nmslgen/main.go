// nmslgen is an NMSL Configuration Generator (paper section 5).
//
// It compiles the specifications, refuses to proceed if they are
// inconsistent (only a consistent specification may be executed), derives
// per-agent configurations, and installs them: as files (-dir) or live
// over the management protocol (-install).
//
// Usage:
//
//	nmslgen [-target BartsSnmpd|nvp] [-dir outdir] spec.nmsl ...
//	nmslgen -install host:port -admin community -instance id \
//	    [-retries n] [-backoff d] [-timeout d] [-failfast] \
//	    [-metrics-addr a] [-trace-out f] spec.nmsl ...
//
// The live install is a fault-tolerant rollout: each target is retried
// with jittered exponential backoff, and Ctrl-C cancels cleanly, leaving
// a report of what was and was not installed. -metrics-addr serves the
// observability endpoint (/metrics, /debug/vars, /debug/pprof) for the
// duration of the run; -trace-out appends tracing spans to a file as
// JSON lines.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"nmsl"
	"nmsl/internal/configgen"
	"nmsl/internal/obs"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nmslgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	target := fs.String("target", configgen.TagBartsSnmpd, "configuration format: BartsSnmpd or nvp")
	dir := fs.String("dir", "", "write one config file per agent instance into this directory")
	install := fs.String("install", "", "install live into the agent at host:port")
	admin := fs.String("admin", "nmsl-admin", "admin community for live install")
	instance := fs.String("instance", "", "agent instance ID whose config to install or print")
	force := fs.Bool("force", false, "generate even if the specification is inconsistent")
	retries := fs.Int("retries", 2, "live install: retries per target after the first attempt")
	backoff := fs.Duration("backoff", 50*time.Millisecond, "live install: base delay between retries (grows exponentially, jittered)")
	timeout := fs.Duration("timeout", 500*time.Millisecond, "live install: per-attempt wait for the agent's acknowledgment")
	failfast := fs.Bool("failfast", false, "live install: cancel remaining targets after the first failure")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	traceOut := fs.String("trace-out", "", "append tracing spans to this file as JSON lines")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "nmslgen: no specification files")
		return 2
	}
	// A negative retry or backoff is always a typo; clamping it
	// silently (as the rollout options would) hides the mistake.
	if *retries < 0 {
		fmt.Fprintf(stderr, "nmslgen: -retries must be >= 0 (got %d)\n", *retries)
		return 2
	}
	if *backoff < 0 {
		fmt.Fprintf(stderr, "nmslgen: -backoff must be >= 0 (got %v)\n", *backoff)
		return 2
	}
	ocli, err := obs.StartCLI(*metricsAddr, *traceOut, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "nmslgen: %v\n", err)
		return 2
	}
	defer ocli.Close()

	c := nmsl.NewCompiler()
	for _, path := range fs.Args() {
		if err := c.CompileFile(path); err != nil {
			fmt.Fprintf(stderr, "nmslgen: %v\n", err)
			return 2
		}
	}
	spec, err := c.Finish()
	if err != nil {
		fmt.Fprintf(stderr, "nmslgen: %v\n", err)
		return 2
	}
	if rep := spec.Check(); !rep.Consistent() {
		fmt.Fprintf(stderr, "nmslgen: specification is inconsistent; configuration only executes from a consistent specification:\n%s", rep)
		if !*force {
			return 1
		}
		fmt.Fprintln(stderr, "nmslgen: -force given, continuing")
	}

	configs := spec.AgentConfigs()
	if len(configs) == 0 {
		fmt.Fprintln(stderr, "nmslgen: no agent instances to configure")
		return 1
	}

	if *install != "" {
		if *instance == "" {
			fmt.Fprintln(stderr, "nmslgen: -install requires -instance")
			return 2
		}
		if configs[*instance] == nil {
			fmt.Fprintf(stderr, "nmslgen: no configuration for instance %q; have:\n", *instance)
			for id := range configs {
				fmt.Fprintf(stderr, "  %s\n", id)
			}
			return 1
		}
		opts := []configgen.RolloutOption{
			configgen.WithRetries(*retries),
			configgen.WithBackoff(*backoff, 0),
			configgen.WithAttemptTimeout(*timeout),
			configgen.WithOnResult(func(r configgen.TargetResult) {
				if r.Err != nil {
					fmt.Fprintf(stderr, "nmslgen: %s: %s after %d attempt(s): %v\n",
						r.Target.InstanceID, r.Status, r.Attempts, r.Err)
				}
			}),
		}
		if *failfast {
			opts = append(opts, configgen.WithFailFast())
		}
		targets := []configgen.Target{{InstanceID: *instance, Addr: *install, AdminCommunity: *admin}}
		report, cerr := configgen.DistributeContext(ctx, spec.Model(), targets, opts...)
		fmt.Fprintln(stdout, report.Summary())
		if cerr != nil {
			fmt.Fprintf(stderr, "nmslgen: rollout canceled: %v\n", cerr)
			return 1
		}
		if !report.OK() {
			return 1
		}
		fmt.Fprintf(stdout, "installed configuration for %s into %s\n", *instance, *install)
		return 0
	}

	if *dir != "" {
		paths, err := configgen.InstallFiles(*dir, *target, configs)
		if err != nil {
			fmt.Fprintf(stderr, "nmslgen: %v\n", err)
			return 1
		}
		for _, p := range paths {
			fmt.Fprintln(stdout, p)
		}
		return 0
	}

	// Print to stdout: one section per instance (or just the selected
	// one).
	for id, cfg := range configs {
		if *instance != "" && id != *instance {
			continue
		}
		fmt.Fprintf(stdout, "# instance %s\n", id)
		var werr error
		switch *target {
		case configgen.TagBartsSnmpd:
			werr = configgen.WriteSnmpdConf(stdout, cfg)
		case configgen.TagNVP:
			werr = configgen.WriteNVP(stdout, cfg)
		default:
			fmt.Fprintf(stderr, "nmslgen: unknown target %q\n", *target)
			return 2
		}
		if werr != nil {
			fmt.Fprintf(stderr, "nmslgen: %v\n", werr)
			return 1
		}
	}
	return 0
}

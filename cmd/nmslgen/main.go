// nmslgen is an NMSL Configuration Generator (paper section 5).
//
// It compiles the specifications, refuses to proceed if they are
// inconsistent (only a consistent specification may be executed), derives
// per-agent configurations, and installs them: as files (-dir) or live
// over the management protocol (-install).
//
// Usage:
//
//	nmslgen [-target BartsSnmpd|nvp] [-dir outdir] spec.nmsl ...
//	nmslgen -install host:port -admin community -instance id spec.nmsl ...
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nmsl"
	"nmsl/internal/configgen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nmslgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	target := fs.String("target", configgen.TagBartsSnmpd, "configuration format: BartsSnmpd or nvp")
	dir := fs.String("dir", "", "write one config file per agent instance into this directory")
	install := fs.String("install", "", "install live into the agent at host:port")
	admin := fs.String("admin", "nmsl-admin", "admin community for live install")
	instance := fs.String("instance", "", "agent instance ID whose config to install or print")
	force := fs.Bool("force", false, "generate even if the specification is inconsistent")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "nmslgen: no specification files")
		return 2
	}

	c := nmsl.NewCompiler()
	for _, path := range fs.Args() {
		if err := c.CompileFile(path); err != nil {
			fmt.Fprintf(stderr, "nmslgen: %v\n", err)
			return 2
		}
	}
	spec, err := c.Finish()
	if err != nil {
		fmt.Fprintf(stderr, "nmslgen: %v\n", err)
		return 2
	}
	if rep := spec.Check(); !rep.Consistent() {
		fmt.Fprintf(stderr, "nmslgen: specification is inconsistent; configuration only executes from a consistent specification:\n%s", rep)
		if !*force {
			return 1
		}
		fmt.Fprintln(stderr, "nmslgen: -force given, continuing")
	}

	configs := spec.AgentConfigs()
	if len(configs) == 0 {
		fmt.Fprintln(stderr, "nmslgen: no agent instances to configure")
		return 1
	}

	if *install != "" {
		if *instance == "" {
			fmt.Fprintln(stderr, "nmslgen: -install requires -instance")
			return 2
		}
		cfg := configs[*instance]
		if cfg == nil {
			fmt.Fprintf(stderr, "nmslgen: no configuration for instance %q; have:\n", *instance)
			for id := range configs {
				fmt.Fprintf(stderr, "  %s\n", id)
			}
			return 1
		}
		cfg.AdminCommunity = *admin
		if err := configgen.InstallLive(*install, *admin, cfg); err != nil {
			fmt.Fprintf(stderr, "nmslgen: install: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "installed configuration for %s into %s\n", *instance, *install)
		return 0
	}

	if *dir != "" {
		paths, err := configgen.InstallFiles(*dir, *target, configs)
		if err != nil {
			fmt.Fprintf(stderr, "nmslgen: %v\n", err)
			return 1
		}
		for _, p := range paths {
			fmt.Fprintln(stdout, p)
		}
		return 0
	}

	// Print to stdout: one section per instance (or just the selected
	// one).
	for id, cfg := range configs {
		if *instance != "" && id != *instance {
			continue
		}
		fmt.Fprintf(stdout, "# instance %s\n", id)
		var werr error
		switch *target {
		case configgen.TagBartsSnmpd:
			werr = configgen.WriteSnmpdConf(stdout, cfg)
		case configgen.TagNVP:
			werr = configgen.WriteNVP(stdout, cfg)
		default:
			fmt.Fprintf(stderr, "nmslgen: unknown target %q\n", *target)
			return 2
		}
		if werr != nil {
			fmt.Fprintf(stderr, "nmslgen: %v\n", werr)
			return 1
		}
	}
	return 0
}

// nmslgen is an NMSL Configuration Generator (paper section 5).
//
// It compiles the specifications, refuses to proceed if they are
// inconsistent (only a consistent specification may be executed), derives
// per-agent configurations, and installs them: as files (-dir) or live
// over the management protocol (-install).
//
// Usage:
//
//	nmslgen [-target BartsSnmpd|nvp] [-dir outdir] spec.nmsl ...
//	nmslgen -install host:port -admin community -instance id \
//	    [-retries n] [-backoff d] [-timeout d] [-failfast] [-json] \
//	    [-metrics-addr a] [-trace-out f] spec.nmsl ...
//	nmslgen -targets fleet.txt [-journal run.journal] [-canary 0.1,0.5] \
//	    [-max-failure-rate 0.05] [-gate-audit] \
//	    [-contract gate.ncs -baseline old.nmsl [...]] spec.nmsl ...
//	nmslgen -journal run.journal -resume spec.nmsl ...
//	nmslgen -journal run.journal -rollback
//
// The live install is a fault-tolerant rollout: each target is retried
// with jittered exponential backoff, and Ctrl-C or SIGTERM cancels
// cleanly, leaving a report of what was and was not installed. With
// -journal the rollout is transactional: the plan, every pre-image and
// every outcome are fsync'd to a write-ahead journal, so a killed run
// restarts idempotently with -resume and an aborted one reverts with
// -rollback. -canary splits the fleet into health-gated waves (the
// cumulative fractions installed by each wave's end); a wave whose
// failure rate exceeds -max-failure-rate, or that -gate-audit finds
// diverging from the specification, is rolled back to its pre-images
// and the rollout aborts. -metrics-addr serves the observability
// endpoint (/metrics, /debug/vars, /debug/pprof) for the duration of
// the run; -trace-out appends tracing spans to a file as JSON lines.
//
// -contract arms the change-contract pre-gate: the edit from the
// baseline specification (-baseline, repeatable) to the one being
// rolled out is verified against the contracts in a .ncs file before
// any wave ships. A plan that exceeds a contract's declared blast
// radius is refused outright — every target canceled, zero datagrams
// sent — where -max-failure-rate and -gate-audit only catch a bad
// change after canaries have taken it.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"nmsl"
	apiv1 "nmsl/api/v1"
	"nmsl/internal/audit"
	"nmsl/internal/configgen"
	"nmsl/internal/obs"
)

type multiFlag []string

func (m *multiFlag) String() string { return fmt.Sprint([]string(*m)) }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// parseCanary converts "0.1,0.5" into stage fractions.
func parseCanary(s string) ([]float64, error) {
	var fracs []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad canary fraction %q: %v", part, err)
		}
		fracs = append(fracs, f)
	}
	return fracs, nil
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nmslgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	target := fs.String("target", configgen.TagBartsSnmpd, "configuration format: BartsSnmpd or nvp")
	dir := fs.String("dir", "", "write one config file per agent instance into this directory")
	install := fs.String("install", "", "install live into the agent at host:port")
	admin := fs.String("admin", "nmsl-admin", "admin community for live install")
	instance := fs.String("instance", "", "agent instance ID whose config to install or print")
	force := fs.Bool("force", false, "generate even if the specification is inconsistent")
	retries := fs.Int("retries", 2, "live install: retries per target after the first attempt")
	backoff := fs.Duration("backoff", 50*time.Millisecond, "live install: base delay between retries (grows exponentially, jittered)")
	timeout := fs.Duration("timeout", 500*time.Millisecond, "live install: per-attempt wait for the agent's acknowledgment")
	failfast := fs.Bool("failfast", false, "live install: cancel remaining targets after the first failure")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	traceOut := fs.String("trace-out", "", "append tracing spans to this file as JSON lines")
	targetsFile := fs.String("targets", "", "rollout fleet file: one \"instanceID addr [admin]\" per line")
	journal := fs.String("journal", "", "record the rollout into a crash-safe write-ahead journal at this path")
	resume := fs.Bool("resume", false, "resume the journaled rollout at -journal (idempotent: already-installed targets are skipped)")
	rollback := fs.Bool("rollback", false, "restore every target the journaled rollout at -journal touched to its pre-image")
	canary := fs.String("canary", "", "comma-separated cumulative canary fractions, e.g. 0.1,0.5: install in health-gated waves")
	maxFailRate := fs.Float64("max-failure-rate", -1, "abort and roll back a wave whose failure rate exceeds this (0 tolerates none; negative disables)")
	gateAudit := fs.Bool("gate-audit", false, "after each wave, audit the installed canaries against the specification; divergence rolls the wave back")
	jsonOut := fs.Bool("json", false, "print the rollout report as api/v1 JSON (the nmsld wire format)")
	contractFile := fs.String("contract", "", "refuse the rollout unless the edit from -baseline satisfies the change contracts in this .ncs file")
	var baselines multiFlag
	fs.Var(&baselines, "baseline", "pre-edit specification file for -contract (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// -rollback needs only the journal (the pre-images it restores are in
	// there), so it is handled before any specification is compiled.
	if *rollback {
		if *journal == "" {
			fmt.Fprintln(stderr, "nmslgen: -rollback requires -journal")
			return 2
		}
		ocli, err := obs.StartCLI(*metricsAddr, *traceOut, stderr)
		if err != nil {
			fmt.Fprintf(stderr, "nmslgen: %v\n", err)
			return 2
		}
		defer ocli.Close()
		report, rerr := configgen.Rollback(ctx, *journal,
			configgen.WithRetries(*retries),
			configgen.WithBackoff(*backoff, 0),
			configgen.WithAttemptTimeout(*timeout),
			configgen.WithOnResult(func(r configgen.TargetResult) {
				if r.Err != nil {
					fmt.Fprintf(stderr, "nmslgen: %s: %s: %v\n", r.Target.InstanceID, r.Status, r.Err)
				}
			}),
		)
		if rerr != nil {
			fmt.Fprintf(stderr, "nmslgen: rollback: %v\n", rerr)
			return 1
		}
		fmt.Fprintln(stdout, report.Summary())
		if report.Failed > 0 || report.Canceled > 0 {
			return 1
		}
		fmt.Fprintf(stdout, "restored %d target(s) to their pre-rollout configuration\n", report.RolledBack)
		return 0
	}

	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "nmslgen: no specification files")
		return 2
	}
	// A negative retry or backoff is always a typo; clamping it
	// silently (as the rollout options would) hides the mistake.
	if *retries < 0 {
		fmt.Fprintf(stderr, "nmslgen: -retries must be >= 0 (got %d)\n", *retries)
		return 2
	}
	if *backoff < 0 {
		fmt.Fprintf(stderr, "nmslgen: -backoff must be >= 0 (got %v)\n", *backoff)
		return 2
	}
	ocli, err := obs.StartCLI(*metricsAddr, *traceOut, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "nmslgen: %v\n", err)
		return 2
	}
	defer ocli.Close()

	c := nmsl.NewCompiler()
	for _, path := range fs.Args() {
		if err := c.CompileFile(path); err != nil {
			fmt.Fprintf(stderr, "nmslgen: %v\n", err)
			return 2
		}
	}
	spec, err := c.Finish()
	if err != nil {
		fmt.Fprintf(stderr, "nmslgen: %v\n", err)
		return 2
	}
	if rep := spec.Check(); !rep.Consistent() {
		fmt.Fprintf(stderr, "nmslgen: specification is inconsistent; configuration only executes from a consistent specification:\n%s", rep)
		if !*force {
			return 1
		}
		fmt.Fprintln(stderr, "nmslgen: -force given, continuing")
	}

	configs := spec.AgentConfigs()
	if len(configs) == 0 {
		fmt.Fprintln(stderr, "nmslgen: no agent instances to configure")
		return 1
	}

	if *install != "" || *targetsFile != "" || *resume {
		opts := []configgen.RolloutOption{
			configgen.WithRetries(*retries),
			configgen.WithBackoff(*backoff, 0),
			configgen.WithAttemptTimeout(*timeout),
			configgen.WithOnResult(func(r configgen.TargetResult) {
				if r.Err != nil {
					fmt.Fprintf(stderr, "nmslgen: %s: %s after %d attempt(s): %v\n",
						r.Target.InstanceID, r.Status, r.Attempts, r.Err)
				}
			}),
		}
		if *failfast {
			opts = append(opts, configgen.WithFailFast())
		}
		if *canary != "" {
			fracs, err := parseCanary(*canary)
			if err != nil {
				fmt.Fprintf(stderr, "nmslgen: %v\n", err)
				return 2
			}
			opts = append(opts, configgen.WithStages(fracs...))
		}
		if *maxFailRate >= 0 {
			opts = append(opts, configgen.WithMaxFailureRate(*maxFailRate))
		}
		if *gateAudit {
			opts = append(opts, configgen.WithGate(audit.Gate(spec.Model(), audit.Options{
				Timeout: *timeout,
				Retries: *retries,
				Backoff: *backoff,
			})))
		}
		if *contractFile != "" {
			if *resume {
				fmt.Fprintln(stderr, "nmslgen: -contract gates a fresh rollout, not -resume (the journaled plan was already gated)")
				return 2
			}
			if len(baselines) == 0 {
				fmt.Fprintln(stderr, "nmslgen: -contract requires -baseline (the pre-edit specification)")
				return 2
			}
			data, err := os.ReadFile(*contractFile)
			if err != nil {
				fmt.Fprintf(stderr, "nmslgen: %v\n", err)
				return 2
			}
			contracts, err := nmsl.ParseChangeContracts(*contractFile, string(data))
			if err != nil {
				fmt.Fprintf(stderr, "nmslgen: %v\n", err)
				return 2
			}
			bc := nmsl.NewCompiler()
			for _, path := range baselines {
				if err := bc.CompileFile(path); err != nil {
					fmt.Fprintf(stderr, "nmslgen: baseline: %v\n", err)
					return 2
				}
			}
			baseSpec, err := bc.Finish()
			if err != nil {
				fmt.Fprintf(stderr, "nmslgen: baseline: %v\n", err)
				return 2
			}
			delta := nmsl.DiffSpecs(baseSpec, spec)
			for _, ct := range contracts {
				opts = append(opts, configgen.WithChangeContract(ct, baseSpec.Model(), delta))
			}
		}

		var report *configgen.RolloutReport
		var cerr error
		switch {
		case *resume:
			if *journal == "" {
				fmt.Fprintln(stderr, "nmslgen: -resume requires -journal")
				return 2
			}
			report, cerr = configgen.ResumeRollout(ctx, spec.Model(), *journal, opts...)
		default:
			var targets []configgen.Target
			if *targetsFile != "" {
				f, err := os.Open(*targetsFile)
				if err != nil {
					fmt.Fprintf(stderr, "nmslgen: %v\n", err)
					return 2
				}
				targets, err = configgen.ParseTargets(f, *admin)
				f.Close()
				if err != nil {
					fmt.Fprintf(stderr, "nmslgen: %v\n", err)
					return 2
				}
				for _, tgt := range targets {
					if configs[tgt.InstanceID] == nil {
						fmt.Fprintf(stderr, "nmslgen: no configuration for instance %q in %s\n", tgt.InstanceID, *targetsFile)
						return 1
					}
				}
			} else {
				if *instance == "" {
					fmt.Fprintln(stderr, "nmslgen: -install requires -instance")
					return 2
				}
				if configs[*instance] == nil {
					fmt.Fprintf(stderr, "nmslgen: no configuration for instance %q; have:\n", *instance)
					for id := range configs {
						fmt.Fprintf(stderr, "  %s\n", id)
					}
					return 1
				}
				targets = []configgen.Target{{InstanceID: *instance, Addr: *install, AdminCommunity: *admin}}
			}
			if *journal != "" {
				opts = append(opts, configgen.WithJournal(*journal))
			}
			report, cerr = configgen.DistributeContext(ctx, spec.Model(), targets, opts...)
		}
		if report == nil {
			fmt.Fprintf(stderr, "nmslgen: rollout: %v\n", cerr)
			return 1
		}
		if *jsonOut {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(apiv1.FromRolloutReport(report)); err != nil {
				fmt.Fprintf(stderr, "nmslgen: %v\n", err)
				return 2
			}
		} else {
			fmt.Fprintln(stdout, report.Summary())
		}
		var ctrErr *configgen.ContractError
		var gerr *configgen.GateError
		switch {
		case errors.As(cerr, &ctrErr):
			fmt.Fprintf(stderr, "nmslgen: rollout refused: %v\n", ctrErr)
			for _, v := range ctrErr.Violations {
				fmt.Fprintf(stderr, "nmslgen:   %s\n", v.Message)
			}
			return 1
		case errors.As(cerr, &gerr):
			fmt.Fprintf(stderr, "nmslgen: %v\n", gerr)
			if *journal != "" {
				fmt.Fprintf(stderr, "nmslgen: pre-images are journaled in %s (nmslgen -journal %s -rollback reverts the rest)\n", *journal, *journal)
			}
			return 1
		case cerr != nil:
			fmt.Fprintf(stderr, "nmslgen: rollout canceled: %v\n", cerr)
			if *journal != "" {
				fmt.Fprintf(stderr, "nmslgen: resume with: nmslgen -journal %s -resume <specs>\n", *journal)
			}
			return 1
		}
		if !report.OK() {
			return 1
		}
		if !*jsonOut {
			if *instance != "" && *install != "" {
				fmt.Fprintf(stdout, "installed configuration for %s into %s\n", *instance, *install)
			} else {
				fmt.Fprintf(stdout, "installed %d target(s)\n", report.Installed)
			}
		}
		return 0
	}

	if *dir != "" {
		paths, err := configgen.InstallFiles(*dir, *target, configs)
		if err != nil {
			fmt.Fprintf(stderr, "nmslgen: %v\n", err)
			return 1
		}
		for _, p := range paths {
			fmt.Fprintln(stdout, p)
		}
		return 0
	}

	// Print to stdout: one section per instance (or just the selected
	// one).
	for id, cfg := range configs {
		if *instance != "" && id != *instance {
			continue
		}
		fmt.Fprintf(stdout, "# instance %s\n", id)
		var werr error
		switch *target {
		case configgen.TagBartsSnmpd:
			werr = configgen.WriteSnmpdConf(stdout, cfg)
		case configgen.TagNVP:
			werr = configgen.WriteNVP(stdout, cfg)
		default:
			fmt.Fprintf(stderr, "nmslgen: unknown target %q\n", *target)
			return 2
		}
		if werr != nil {
			fmt.Fprintf(stderr, "nmslgen: %v\n", werr)
			return 1
		}
	}
	return 0
}

package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nmsl/internal/mib"
	"nmsl/internal/obs"
	"nmsl/internal/paperspec"
	"nmsl/internal/snmp"
)

func TestNegativeRetriesRejected(t *testing.T) {
	path := specFile(t, paperspec.Combined)
	var out, errb strings.Builder
	if code := run(context.Background(), []string{"-retries", "-1", path}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "-retries must be >= 0") {
		t.Fatalf("stderr: %q", errb.String())
	}
}

func TestNegativeBackoffRejected(t *testing.T) {
	path := specFile(t, paperspec.Combined)
	var out, errb strings.Builder
	if code := run(context.Background(), []string{"-backoff", "-1s", path}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "-backoff must be >= 0") {
		t.Fatalf("stderr: %q", errb.String())
	}
}

func TestObservabilityFlags(t *testing.T) {
	store := snmp.NewStore()
	snmp.PopulateFromMIB(store, mib.NewStandard(), "mgmt.mib")
	agent := snmp.NewAgent(store, &snmp.Config{
		Communities:    map[string]*snmp.CommunityConfig{},
		AdminCommunity: "adm",
	})
	addr, err := agent.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	trace := filepath.Join(t.TempDir(), "spans.jsonl")
	var out, errb strings.Builder
	code := run(context.Background(), []string{
		"-install", addr.String(), "-admin", "adm",
		"-instance", "snmpdReadOnly@romano.cs.wisc.edu#0",
		"-metrics-addr", "127.0.0.1:0", "-trace-out", trace,
		specFile(t, paperspec.Combined)}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "metrics: serving http://") {
		t.Fatalf("no endpoint announcement on stderr: %q", errb.String())
	}

	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	for _, span := range []string{`"name":"rollout"`, `"name":"rollout.target"`} {
		if !strings.Contains(string(data), span) {
			t.Errorf("trace file missing %s span: %q", span, data)
		}
	}

	// The rollout recorded into the process registry the endpoint serves.
	cli, err := obs.StartCLI("127.0.0.1:0", "", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", cli.Server.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	for _, name := range []string{"nmsl_rollout_runs_total", "nmsl_rollout_attempts_total"} {
		if !strings.Contains(string(body), name) {
			t.Errorf("/metrics missing %s:\n%s", name, body)
		}
	}
}

func TestBadMetricsAddr(t *testing.T) {
	var out, errb strings.Builder
	code := run(context.Background(), []string{"-metrics-addr", "definitely not an address",
		specFile(t, paperspec.Combined)}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "metrics-addr") {
		t.Fatalf("stderr: %q", errb.String())
	}
}

// nmslc is the NMSL compiler (paper Figure 3.1, section 6).
//
// It parses basic-language and extension-language input, runs the generic
// semantic actions, and optionally executes one set of output-specific
// actions selected by -output (section 6.2): "consistency" for logic
// facts, "BartsSnmpd" or "nvp" for configuration output, or any tag an
// extension defines.
//
// Usage:
//
//	nmslc [-ext file.nmslext ...] [-output tag] [-o outfile] spec.nmsl ...
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nmsl"
)

type multiFlag []string

func (m *multiFlag) String() string { return fmt.Sprint([]string(*m)) }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nmslc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var exts multiFlag
	fs.Var(&exts, "ext", "extension language file (repeatable)")
	output := fs.String("output", "", "output-specific action tag (consistency, BartsSnmpd, nvp, ...)")
	outFile := fs.String("o", "", "write output to file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "nmslc: no specification files")
		fs.Usage()
		return 2
	}

	c := nmsl.NewCompiler()
	for _, path := range exts {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "nmslc: %v\n", err)
			return 1
		}
		if err := c.AddExtensionSource(path, string(data)); err != nil {
			fmt.Fprintf(stderr, "nmslc: extension %s: %v\n", path, err)
			return 1
		}
	}
	for _, path := range fs.Args() {
		if err := c.CompileFile(path); err != nil {
			fmt.Fprintf(stderr, "nmslc: %v\n", err)
			return 1
		}
	}
	spec, err := c.Finish()
	if err != nil {
		fmt.Fprintf(stderr, "nmslc: %v\n", err)
		return 1
	}

	if *output == "" {
		fmt.Fprintf(stdout, "nmslc: %d types, %d processes, %d systems, %d domains compiled cleanly\n",
			len(spec.AST().Types), len(spec.AST().Processes), len(spec.AST().Systems), len(spec.AST().Domains))
		return 0
	}

	var w io.Writer = stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintf(stderr, "nmslc: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := spec.Generate(*output, w); err != nil {
		fmt.Fprintf(stderr, "nmslc: %v\n", err)
		return 1
	}
	return 0
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nmsl/internal/paperspec"
)

func specFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.nmsl")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompileClean(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{specFile(t, paperspec.Combined)}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "compiled cleanly") {
		t.Fatalf("output: %q", out.String())
	}
}

func TestConsistencyOutput(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-output", "consistency", specFile(t, paperspec.Combined)}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "proc_export(snmpdReadOnly,") {
		t.Fatalf("output: %q", out.String())
	}
}

func TestOutputToFile(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "facts.pl")
	var out, errb strings.Builder
	code := run([]string{"-output", "consistency", "-o", outPath, specFile(t, paperspec.Combined)}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "system_spec") {
		t.Fatalf("file: %q", data)
	}
}

func TestExtensionFlag(t *testing.T) {
	extPath := filepath.Join(t.TempDir(), "p.nmslext")
	ext := `extension p ::= clause proxies; decltype process; semantics namelist; end extension p.`
	if err := os.WriteFile(extPath, []byte(ext), 0o644); err != nil {
		t.Fatal(err)
	}
	spec := specFile(t, `process x ::= supports mgmt.mib; proxies b; end process x.`)
	var out, errb strings.Builder
	if code := run([]string{"-ext", extPath, spec}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
}

func TestErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no files: exit %d", code)
	}
	if code := run([]string{"/does/not/exist.nmsl"}, &out, &errb); code != 1 {
		t.Errorf("missing file: exit %d", code)
	}
	bad := specFile(t, "domain d ::= system ghost; end domain d.")
	if code := run([]string{bad}, &out, &errb); code != 1 {
		t.Errorf("semantic error: exit %d", code)
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nmsl/internal/obs"
	"nmsl/internal/paperspec"
)

// scrape fetches a path from the observability endpoint and returns
// the body.
func scrape(t *testing.T, addr, path string) string {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
	}
	return string(body)
}

func TestObservabilityFlags(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "spans.jsonl")
	var out, errb strings.Builder
	code := run([]string{"-metrics-addr", "127.0.0.1:0", "-trace-out", trace,
		specFile(t, paperspec.Combined)}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "metrics: serving http://") {
		t.Fatalf("no endpoint announcement on stderr: %q", errb.String())
	}

	// The span log survives the run and holds the check span.
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"name":"check"`) {
		t.Fatalf("trace file has no check span: %q", data)
	}

	// The run recorded into the process registry; a fresh endpoint
	// (the same one -metrics-addr starts) serves it in both formats.
	cli, err := obs.StartCLI("127.0.0.1:0", "", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	addr := cli.Server.Addr().String()
	prom := scrape(t, addr, "/metrics")
	if !strings.Contains(prom, "nmsl_check_refs_total") ||
		!strings.Contains(prom, "# TYPE nmsl_check_duration_ns histogram") {
		t.Errorf("/metrics missing check metrics:\n%s", prom)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(scrape(t, addr, "/debug/vars")), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["nmsl_check_refs_total"]; !ok {
		t.Errorf("/debug/vars missing nmsl_check_refs_total: %v", vars)
	}
	if body := scrape(t, addr, "/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}

func TestBadMetricsAddr(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-metrics-addr", "definitely not an address",
		specFile(t, paperspec.Combined)}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "metrics-addr") {
		t.Fatalf("stderr: %q", errb.String())
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nmsl/internal/netsim"
	"nmsl/internal/paperspec"
)

func specFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.nmsl")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestConsistentExitsZero(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{specFile(t, paperspec.Combined)}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "consistent:") {
		t.Fatalf("output: %q", out.String())
	}
}

func TestInconsistentExitsOne(t *testing.T) {
	src := `
process agent ::= supports mgmt.mib; end process agent.
process poller ::= queries agent requests mgmt.mib.system frequency infrequent; end process poller.
system "h" ::=
    cpu sparc; interface ie0 net l type e speed 10 bps;
    supports mgmt.mib; process agent; process poller;
end system "h".
domain d ::= system h; end domain d.
`
	var out, errb strings.Builder
	code := run([]string{specFile(t, src)}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "no-permission") {
		t.Fatalf("output: %q", out.String())
	}
}

func TestLogicFlagAgrees(t *testing.T) {
	path := specFile(t, paperspec.Combined)
	var a, b, errb strings.Builder
	if code := run([]string{path}, &a, &errb); code != 0 {
		t.Fatal(errb.String())
	}
	if code := run([]string{"-logic", path}, &b, &errb); code != 0 {
		t.Fatal(errb.String())
	}
	if a.String() != b.String() {
		t.Fatalf("checkers disagree:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestWorkersFlagIdenticalOutput(t *testing.T) {
	path := specFile(t, paperspec.Combined)
	var serial, par, errb strings.Builder
	if code := run([]string{"-workers", "1", path}, &serial, &errb); code != 0 {
		t.Fatal(errb.String())
	}
	if code := run([]string{"-workers", "8", path}, &par, &errb); code != 0 {
		t.Fatal(errb.String())
	}
	if serial.String() != par.String() {
		t.Fatalf("worker count changed the report:\n%s\nvs\n%s", serial.String(), par.String())
	}
}

func TestStreamFlag(t *testing.T) {
	src := `
process agent ::= supports mgmt.mib; end process agent.
process poller ::= queries agent requests mgmt.mib.system frequency infrequent; end process poller.
system "h" ::=
    cpu sparc; interface ie0 net l type e speed 10 bps;
    supports mgmt.mib; process agent; process poller;
end system "h".
domain d ::= system h; end domain d.
`
	var out, errb strings.Builder
	code := run([]string{"-stream", "-workers", "2", specFile(t, src)}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "[no-permission]") ||
		!strings.Contains(out.String(), "INCONSISTENT: 1 violations") {
		t.Fatalf("output: %q", out.String())
	}
}

func TestFailFastFlag(t *testing.T) {
	src := `
process agent ::= supports mgmt.mib; end process agent.
process poller ::= queries agent requests mgmt.mib.system frequency infrequent; end process poller.
system "h" ::=
    cpu sparc; interface ie0 net l type e speed 10 bps;
    supports mgmt.mib; process agent; process poller;
end system "h".
domain d ::= system h; end domain d.
`
	var out, errb strings.Builder
	if code := run([]string{"-failfast", specFile(t, src)}, &out, &errb); code != 1 {
		t.Fatalf("exit %d: %s%s", code, out.String(), errb.String())
	}
}

func TestTimeoutExpiredAborts(t *testing.T) {
	// A synthetic 2000-domain internet keeps the check busy long enough
	// that a 1ns deadline always fires mid-scan.
	path := specFile(t, netsim.Source(netsim.Params{Domains: 2000, SystemsPerDomain: 2, Seed: 1}))
	var out, errb strings.Builder
	code := run([]string{"-timeout", "1ns", path}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit %d: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "check aborted") {
		t.Fatalf("stderr: %q", errb.String())
	}
}

func TestLoadFlag(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-load", specFile(t, paperspec.Combined)}, &out, &errb)
	if code != 0 {
		t.Fatal(errb.String())
	}
	if !strings.Contains(out.String(), "estimated management load") {
		t.Fatalf("output: %q", out.String())
	}
}

func TestProgramFlag(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-program", specFile(t, paperspec.Combined)}, &out, &errb)
	if code != 0 {
		t.Fatal(errb.String())
	}
	if !strings.Contains(out.String(), "inconsistent(") {
		t.Fatalf("output: %q", out.String())
	}
}

func TestSolveFlag(t *testing.T) {
	path := specFile(t, paperspec.Combined)
	var out, errb strings.Builder
	code := run([]string{
		"-solve", "snmpaddr@wisc-cs#0,snmpdReadOnly@romano.cs.wisc.edu#0,mgmt.mib.ip.ipAddrTable.IpAddrEntry,ReadOnly",
		path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "[300, +inf)") {
		t.Fatalf("output: %q", out.String())
	}
	// write access -> empty set -> exit 1
	out.Reset()
	code = run([]string{
		"-solve", "snmpaddr@wisc-cs#0,snmpdReadOnly@romano.cs.wisc.edu#0,mgmt.mib.ip.ipAddrTable.IpAddrEntry,WriteOnly",
		path}, &out, &errb)
	if code != 1 || !strings.Contains(out.String(), "∅") {
		t.Fatalf("exit %d output %q", code, out.String())
	}
}

func TestSolveErrors(t *testing.T) {
	path := specFile(t, paperspec.Combined)
	var out, errb strings.Builder
	if code := run([]string{"-solve", "too,few", path}, &out, &errb); code != 2 {
		t.Errorf("bad solve args: exit %d", code)
	}
	if code := run([]string{"-solve", "a,b,c,Sometimes", path}, &out, &errb); code != 2 {
		t.Errorf("bad access: exit %d", code)
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no files: exit %d", code)
	}
	if code := run([]string{"/missing.nmsl"}, &out, &errb); code != 2 {
		t.Errorf("missing file: exit %d", code)
	}
}

func TestSimulateFlag(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-simulate", "12h", specFile(t, paperspec.Combined)}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "simulated 12h0m0s") {
		t.Fatalf("output: %q", out.String())
	}
}

// TestContractFlag drives the change-contract mode: an edit outside
// the contract's scope exits 1 with the violation listed; a ring-wide
// contract accepts the same edit.
func TestContractFlag(t *testing.T) {
	p := netsim.Params{Domains: 3, SystemsPerDomain: 1, Seed: 5}
	base := netsim.Source(p)
	anchor := "queries agentT0\n        requests mgmt.mib.system.sysDescr\n        frequency >= 5 minutes;"
	if strings.Count(base, anchor) != 1 {
		t.Fatal("edit anchor not unique in netsim source")
	}
	edited := strings.Replace(base, anchor,
		strings.Replace(anchor, ">= 5 minutes", ">= 10 minutes", 1), 1)

	dir := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	basePath := write("base.nmsl", base)
	newPath := write("new.nmsl", edited)
	scoped := write("gate.ncs", "contract only-dom0 ::=\n    scope dom0;\nend contract only-dom0.\n")
	ringWide := write("wide.ncs", "contract ring-wide ::=\n    scope public;\n    forbid widen-access;\nend contract ring-wide.\n")

	var out, errb strings.Builder
	code := run([]string{"-contract", scoped, "-baseline", basePath, newPath}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "VIOLATED") || !strings.Contains(out.String(), "outside contract scope") {
		t.Fatalf("output: %q", out.String())
	}

	out.Reset()
	code = run([]string{"-contract", ringWide, "-baseline", basePath, newPath}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "contract ring-wide: OK") {
		t.Fatalf("output: %q", out.String())
	}

	// Usage errors: no baseline, unparseable contract text.
	if code := run([]string{"-contract", scoped, newPath}, &out, &errb); code != 2 {
		t.Errorf("-contract without -baseline: exit %d", code)
	}
	broken := write("broken.ncs", "contract broken")
	if code := run([]string{"-contract", broken, "-baseline", basePath, newPath}, &out, &errb); code != 2 {
		t.Errorf("broken contract: exit %d", code)
	}
}

func TestCacheFlag(t *testing.T) {
	path := specFile(t, paperspec.Combined)
	dir := filepath.Join(t.TempDir(), "cache")

	// Cold run: the cache directory is created and every verdict misses.
	var cold, errb strings.Builder
	if code := run([]string{"-cache", dir, path}, &cold, &errb); code != 0 {
		t.Fatalf("cold exit %d: %s", code, errb.String())
	}
	if !strings.Contains(cold.String(), "cache: 0 hits") {
		t.Fatalf("cold output: %q", cold.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "nmslcheck.cache.json")); err != nil {
		t.Fatalf("cache file not written: %v", err)
	}

	// Warm run: every verdict replays; the verdict itself is unchanged.
	var warm strings.Builder
	errb.Reset()
	if code := run([]string{"-cache", dir, path}, &warm, &errb); code != 0 {
		t.Fatalf("warm exit %d: %s", code, errb.String())
	}
	if !strings.Contains(warm.String(), "hits, 0 misses") || strings.Contains(warm.String(), "cache: 0 hits") {
		t.Fatalf("warm output: %q", warm.String())
	}
	coldVerdict := cold.String()[:strings.Index(cold.String(), "cache:")]
	warmVerdict := warm.String()[:strings.Index(warm.String(), "cache:")]
	if coldVerdict != warmVerdict {
		t.Fatalf("warm verdict diverges:\n%q\nvs\n%q", warmVerdict, coldVerdict)
	}

	// A corrupt cache file warns and degrades to a cold start.
	if err := os.WriteFile(filepath.Join(dir, "nmslcheck.cache.json"), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out3 strings.Builder
	errb.Reset()
	if code := run([]string{"-cache", dir, path}, &out3, &errb); code != 0 {
		t.Fatalf("corrupt-cache exit %d: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "ignoring cache") {
		t.Fatalf("stderr: %q", errb.String())
	}

	// -cache is indexed-engine only.
	errb.Reset()
	if code := run([]string{"-cache", dir, "-logic", path}, &out3, &errb); code != 2 {
		t.Fatalf("-cache -logic exit %d, want 2", code)
	}
}

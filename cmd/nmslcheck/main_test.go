package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nmsl/internal/paperspec"
)

func specFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.nmsl")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestConsistentExitsZero(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{specFile(t, paperspec.Combined)}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "consistent:") {
		t.Fatalf("output: %q", out.String())
	}
}

func TestInconsistentExitsOne(t *testing.T) {
	src := `
process agent ::= supports mgmt.mib; end process agent.
process poller ::= queries agent requests mgmt.mib.system frequency infrequent; end process poller.
system "h" ::=
    cpu sparc; interface ie0 net l type e speed 10 bps;
    supports mgmt.mib; process agent; process poller;
end system "h".
domain d ::= system h; end domain d.
`
	var out, errb strings.Builder
	code := run([]string{specFile(t, src)}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "no-permission") {
		t.Fatalf("output: %q", out.String())
	}
}

func TestLogicFlagAgrees(t *testing.T) {
	path := specFile(t, paperspec.Combined)
	var a, b, errb strings.Builder
	if code := run([]string{path}, &a, &errb); code != 0 {
		t.Fatal(errb.String())
	}
	if code := run([]string{"-logic", path}, &b, &errb); code != 0 {
		t.Fatal(errb.String())
	}
	if a.String() != b.String() {
		t.Fatalf("checkers disagree:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestLoadFlag(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-load", specFile(t, paperspec.Combined)}, &out, &errb)
	if code != 0 {
		t.Fatal(errb.String())
	}
	if !strings.Contains(out.String(), "estimated management load") {
		t.Fatalf("output: %q", out.String())
	}
}

func TestProgramFlag(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-program", specFile(t, paperspec.Combined)}, &out, &errb)
	if code != 0 {
		t.Fatal(errb.String())
	}
	if !strings.Contains(out.String(), "inconsistent(") {
		t.Fatalf("output: %q", out.String())
	}
}

func TestSolveFlag(t *testing.T) {
	path := specFile(t, paperspec.Combined)
	var out, errb strings.Builder
	code := run([]string{
		"-solve", "snmpaddr@wisc-cs#0,snmpdReadOnly@romano.cs.wisc.edu#0,mgmt.mib.ip.ipAddrTable.IpAddrEntry,ReadOnly",
		path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "[300, +inf)") {
		t.Fatalf("output: %q", out.String())
	}
	// write access -> empty set -> exit 1
	out.Reset()
	code = run([]string{
		"-solve", "snmpaddr@wisc-cs#0,snmpdReadOnly@romano.cs.wisc.edu#0,mgmt.mib.ip.ipAddrTable.IpAddrEntry,WriteOnly",
		path}, &out, &errb)
	if code != 1 || !strings.Contains(out.String(), "∅") {
		t.Fatalf("exit %d output %q", code, out.String())
	}
}

func TestSolveErrors(t *testing.T) {
	path := specFile(t, paperspec.Combined)
	var out, errb strings.Builder
	if code := run([]string{"-solve", "too,few", path}, &out, &errb); code != 2 {
		t.Errorf("bad solve args: exit %d", code)
	}
	if code := run([]string{"-solve", "a,b,c,Sometimes", path}, &out, &errb); code != 2 {
		t.Errorf("bad access: exit %d", code)
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no files: exit %d", code)
	}
	if code := run([]string{"/missing.nmsl"}, &out, &errb); code != 2 {
		t.Errorf("missing file: exit %d", code)
	}
}

func TestSimulateFlag(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-simulate", "12h", specFile(t, paperspec.Combined)}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "simulated 12h0m0s") {
		t.Fatalf("output: %q", out.String())
	}
}

// nmslcheck is the NMSL Consistency Checker (paper section 4.2).
//
// It compiles the specifications, proves consistency (every reference has
// a corresponding permission, with access and frequency constraints), and
// lists the immediate causes of any inconsistency. It also exposes the
// checker's speculative roles: -load estimates the management traffic a
// specification implies, and -solve runs the check in reverse to find the
// admissible query periods of a prospective reference.
//
// Usage:
//
//	nmslcheck [-ext f ...] [-logic] [-workers n] [-stream] [-failfast]
//	          [-timeout d] [-load] [-program] [-cache dir] [-cache-max n]
//	          [-json] [-metrics-addr a] [-trace-out f] spec.nmsl ...
//	nmslcheck -solve src,tgt,var,access spec.nmsl ...
//	nmslcheck -contract gate.ncs -baseline old.nmsl [...] spec.nmsl ...
//
// -contract verifies the edit between the baseline specification
// (-baseline, repeatable, compiled with the same -ext extensions) and
// the given one against the change contracts in a .ncs file — the
// Rela-style relational discipline: the edit's computed delta must stay
// inside each contract's declared blast radius (scope, no widened
// access, no relaxed frequencies, bounded instance/permission churn).
// One summary line per contract, each violation listed under it; exit 1
// if any contract is violated.
//
// -cache dir persists per-reference verdicts (keyed by dependency
// fingerprints) under dir across runs, so re-checking a large
// specification after a small edit replays unchanged verdicts instead
// of re-proving them. A missing cache file is a cold start; a corrupt
// one is reported and ignored. -cache-max caps the cache at n entries,
// evicting least-recently-used verdicts first (the same cap nmsld
// applies per tenant).
//
// -json prints the report as the api/v1 wire document — byte-for-byte
// the Report shape nmsld serves — so scripts consume one format
// whether they shell out to nmslcheck or curl the daemon.
//
// -metrics-addr serves the observability endpoint (/metrics in
// Prometheus text form, /debug/vars as JSON, /debug/pprof for
// profiling) while the check runs; -trace-out appends tracing spans to
// a file as JSON lines.
//
// The check runs over a sharded worker pool (-workers, default one per
// CPU) and can stream each violation as it is found (-stream), stop at
// the first one (-failfast), or be bounded by a deadline (-timeout).
// An interrupt (Ctrl-C) cancels a running check and reports the partial
// result.
//
// Exit status: 0 consistent, 1 inconsistent, 2 usage or compile error
// (including a cancelled or timed-out check).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"nmsl"
	apiv1 "nmsl/api/v1"
	"nmsl/internal/obs"
)

type multiFlag []string

func (m *multiFlag) String() string { return fmt.Sprint([]string(*m)) }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nmslcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var exts multiFlag
	fs.Var(&exts, "ext", "extension language file (repeatable)")
	useLogic := fs.Bool("logic", false, "use the CLP(R)-style logic engine instead of the indexed checker")
	workers := fs.Int("workers", 0, "check worker pool size (0 = one per CPU)")
	stream := fs.Bool("stream", false, "print each violation as it is found; end with a one-line summary")
	failFast := fs.Bool("failfast", false, "stop the check at the first violation")
	timeout := fs.Duration("timeout", 0, "abort the check after this long (0 = no deadline)")
	load := fs.Bool("load", false, "also print the estimated management load")
	program := fs.Bool("program", false, "also print the logic program (facts + rules)")
	solve := fs.String("solve", "", "reverse-solve admissible periods: src,tgt,var,access")
	contractFile := fs.String("contract", "", "verify the edit from -baseline against the change contracts in this .ncs file")
	var baselines multiFlag
	fs.Var(&baselines, "baseline", "pre-edit specification file for -contract (repeatable)")
	cacheDir := fs.String("cache", "", "persist per-reference verdicts under this directory across runs")
	cacheMax := fs.Int("cache-max", 0, "cap the verdict cache at this many entries, LRU-evicted (0 = unbounded)")
	jsonOut := fs.Bool("json", false, "print the check report as api/v1 JSON (the nmsld wire format)")
	simulate := fs.Duration("simulate", 0, "also simulate this much virtual operation (e.g. 24h)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	traceOut := fs.String("trace-out", "", "append tracing spans to this file as JSON lines")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "nmslcheck: no specification files")
		return 2
	}
	ocli, err := obs.StartCLI(*metricsAddr, *traceOut, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "nmslcheck: %v\n", err)
		return 2
	}
	defer ocli.Close()

	c := nmsl.NewCompiler()
	for _, path := range exts {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "nmslcheck: %v\n", err)
			return 2
		}
		if err := c.AddExtensionSource(path, string(data)); err != nil {
			fmt.Fprintf(stderr, "nmslcheck: %v\n", err)
			return 2
		}
	}
	for _, path := range fs.Args() {
		if err := c.CompileFile(path); err != nil {
			fmt.Fprintf(stderr, "nmslcheck: %v\n", err)
			return 2
		}
	}
	spec, err := c.Finish()
	if err != nil {
		fmt.Fprintf(stderr, "nmslcheck: %v\n", err)
		return 2
	}

	if *contractFile != "" {
		if len(baselines) == 0 {
			fmt.Fprintln(stderr, "nmslcheck: -contract requires -baseline (the pre-edit specification)")
			return 2
		}
		data, err := os.ReadFile(*contractFile)
		if err != nil {
			fmt.Fprintf(stderr, "nmslcheck: %v\n", err)
			return 2
		}
		contracts, err := nmsl.ParseChangeContracts(*contractFile, string(data))
		if err != nil {
			fmt.Fprintf(stderr, "nmslcheck: %v\n", err)
			return 2
		}
		bc := nmsl.NewCompiler()
		for _, path := range exts {
			data, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintf(stderr, "nmslcheck: %v\n", err)
				return 2
			}
			if err := bc.AddExtensionSource(path, string(data)); err != nil {
				fmt.Fprintf(stderr, "nmslcheck: %v\n", err)
				return 2
			}
		}
		for _, path := range baselines {
			if err := bc.CompileFile(path); err != nil {
				fmt.Fprintf(stderr, "nmslcheck: baseline: %v\n", err)
				return 2
			}
		}
		baseSpec, err := bc.Finish()
		if err != nil {
			fmt.Fprintf(stderr, "nmslcheck: baseline: %v\n", err)
			return 2
		}
		_, results := spec.VerifyChange(baseSpec, contracts...)
		violated := false
		for _, r := range results {
			fmt.Fprintln(stdout, r.Summary())
			for _, v := range r.Violations {
				fmt.Fprintf(stdout, "  %s\n", v.Message)
			}
			if !r.OK() {
				violated = true
			}
		}
		if violated {
			return 1
		}
		return 0
	}

	if *solve != "" {
		parts := strings.Split(*solve, ",")
		if len(parts) != 4 {
			fmt.Fprintln(stderr, "nmslcheck: -solve wants src,tgt,var,access")
			return 2
		}
		access := nmsl.AccessReadOnly
		switch parts[3] {
		case "ReadOnly":
		case "WriteOnly":
			access = nmsl.AccessWriteOnly
		case "Any":
			access = nmsl.AccessAny
		default:
			fmt.Fprintf(stderr, "nmslcheck: bad access %q\n", parts[3])
			return 2
		}
		ivs, err := spec.AdmissiblePeriods(parts[0], parts[1], parts[2], access)
		if err != nil {
			fmt.Fprintf(stderr, "nmslcheck: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "admissible periods (seconds): %s\n", nmsl.FormatIntervals(ivs))
		if len(ivs) == 0 {
			return 1
		}
		return 0
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	copts := []nmsl.CheckOption{nmsl.WithWorkers(*workers)}
	if *useLogic {
		copts = append(copts, nmsl.WithEngine(nmsl.EngineLogic))
	}
	var cache *nmsl.CheckCache
	var cachePath string
	if *cacheDir != "" {
		if *useLogic {
			fmt.Fprintln(stderr, "nmslcheck: -cache requires the indexed engine (drop -logic)")
			return 2
		}
		if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "nmslcheck: %v\n", err)
			return 2
		}
		cache = nmsl.NewCheckCache()
		if *cacheMax > 0 {
			cache.SetMaxEntries(*cacheMax)
		}
		cachePath = filepath.Join(*cacheDir, "nmslcheck.cache.json")
		if err := cache.LoadFile(cachePath); err != nil && !os.IsNotExist(err) {
			fmt.Fprintf(stderr, "nmslcheck: ignoring cache: %v\n", err)
		}
		copts = append(copts, nmsl.WithCache(cache))
	}
	if *stream {
		copts = append(copts, nmsl.WithOnViolation(func(v nmsl.Violation) {
			fmt.Fprintf(stdout, "  %s\n", v)
		}))
	}
	if *failFast {
		copts = append(copts, nmsl.WithFailFast())
	}
	rep, cerr := spec.CheckContext(ctx, copts...)
	if cerr != nil {
		fmt.Fprintf(stderr, "nmslcheck: check aborted: %v (%d references checked, %d violations so far)\n",
			cerr, rep.RefsChecked, len(rep.Violations))
		return 2
	}
	switch {
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(apiv1.FromReport(rep)); err != nil {
			fmt.Fprintf(stderr, "nmslcheck: %v\n", err)
			return 2
		}
	case *stream:
		fmt.Fprintln(stdout, rep.Summary())
	default:
		fmt.Fprint(stdout, rep.String())
	}
	if cache != nil {
		if err := cache.SaveFile(cachePath); err != nil {
			fmt.Fprintf(stderr, "nmslcheck: saving cache: %v\n", err)
		}
		if !*jsonOut {
			st := cache.Stats()
			fmt.Fprintf(stdout, "cache: %d hits, %d misses, %d invalidated (%d entries)\n",
				st.Hits, st.Misses, st.Invalidations, st.Entries)
		}
	}
	if *load {
		fmt.Fprint(stdout, spec.EstimateLoad(nmsl.LoadOptions{}).String())
	}
	if *program {
		if err := spec.WriteConsistencyProgram(stdout); err != nil {
			fmt.Fprintf(stderr, "nmslcheck: %v\n", err)
			return 2
		}
	}
	if *simulate > 0 {
		res, err := spec.Simulate(nmsl.SimOptions{Duration: *simulate})
		if err != nil {
			fmt.Fprintf(stderr, "nmslcheck: %v\n", err)
			return 2
		}
		fmt.Fprint(stdout, res.String())
		if !res.Clean() {
			return 1
		}
	}
	if !rep.Consistent() {
		return 1
	}
	return 0
}

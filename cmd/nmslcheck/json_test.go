package main

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	apiv1 "nmsl/api/v1"
	"nmsl/internal/netsim"
	"nmsl/internal/paperspec"
)

// TestJSONReport proves -json emits the api/v1 report document — the
// same shape nmsld serves — instead of the prose report.
func TestJSONReport(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-json", specFile(t, paperspec.Combined)}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	var rep apiv1.Report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("stdout is not an api/v1 report: %v\n%s", err, out.String())
	}
	if rep.APIVersion != apiv1.Version || !rep.Consistent || rep.RefsChecked == 0 {
		t.Fatalf("bad report: %+v", rep)
	}
}

// TestJSONReportInconsistent keeps the violation payload and the exit
// code aligned with the text mode.
func TestJSONReportInconsistent(t *testing.T) {
	p := netsim.Params{Domains: 2, SystemsPerDomain: 2, InconsistencyRate: 1, Seed: 3}
	want := netsim.ExpectedViolations(p)
	if want == 0 {
		t.Fatal("test wants violations")
	}
	var out, errb strings.Builder
	code := run([]string{"-json", specFile(t, netsim.Source(p))}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1: %s", code, errb.String())
	}
	var rep apiv1.Report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Consistent || len(rep.Violations) != want {
		t.Fatalf("report: consistent=%v violations=%d want %d", rep.Consistent, len(rep.Violations), want)
	}
	for _, v := range rep.Violations {
		if v.Kind == "" || v.Message == "" {
			t.Fatalf("violation missing fields: %+v", v)
		}
	}
}

// TestCacheMaxFlag caps the CLI cache and checks the persisted file
// honors it across runs.
func TestCacheMaxFlag(t *testing.T) {
	p := netsim.Params{Domains: 3, SystemsPerDomain: 3, Seed: 5}
	spec := specFile(t, netsim.Source(p))
	dir := filepath.Join(t.TempDir(), "cache")
	var out, errb strings.Builder
	if code := run([]string{"-cache", dir, "-cache-max", "2", spec}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "(2 entries)") {
		t.Fatalf("cache not capped: %q", out.String())
	}
}

package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nmsl"
	"nmsl/internal/mib"
	"nmsl/internal/paperspec"
	"nmsl/internal/snmp"
)

const instID = "snmpdReadOnly@romano.cs.wisc.edu#0"

func specFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.nmsl")
	if err := os.WriteFile(path, []byte(paperspec.Combined), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// startAgent runs an agent configured per the specification (adherent)
// or with a weakened config (divergent).
func startAgent(t *testing.T, adherent bool) string {
	t.Helper()
	c := nmsl.NewCompiler()
	if err := c.CompileSource("paper", paperspec.Combined); err != nil {
		t.Fatal(err)
	}
	spec, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	cfg := spec.AgentConfigs()[instID]
	if !adherent {
		for _, cc := range cfg.Communities {
			cc.MinInterval = 0
			cc.Access = mib.AccessAny
		}
	}
	store := snmp.NewStore()
	snmp.PopulateFromMIB(store, spec.AST().MIB, "mgmt.mib")
	agent := snmp.NewAgent(store, cfg)
	addr, err := agent.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { agent.Close() })
	return addr.String()
}

func TestAdherentAgentExitsZero(t *testing.T) {
	addr := startAgent(t, true)
	var out, errb strings.Builder
	code := run(context.Background(), []string{"-instance", instID, "-addr", addr, specFile(t)}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "adheres") {
		t.Fatalf("output: %q", out.String())
	}
}

func TestDivergentAgentExitsOne(t *testing.T) {
	addr := startAgent(t, false)
	var out, errb strings.Builder
	code := run(context.Background(), []string{"-instance", instID, "-addr", addr, "-writes", specFile(t)}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "rate-leak") {
		t.Fatalf("output: %q", out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run(context.Background(), nil, &out, &errb); code != 2 {
		t.Errorf("no args: exit %d", code)
	}
	if code := run(context.Background(), []string{"-instance", "x", "-addr", "y", "/missing.nmsl"}, &out, &errb); code != 2 {
		t.Errorf("missing file: exit %d", code)
	}
	if code := run(context.Background(), []string{"-instance", "ghost", "-addr", "127.0.0.1:1", specFile(t)}, &out, &errb); code != 2 {
		t.Errorf("unknown instance: exit %d", code)
	}
}

// startDriftedAgent runs an agent honoring the admin community but with
// an empty (drifted) configuration, returning the agent for state
// assertions.
func startDriftedAgent(t *testing.T) (*snmp.Agent, string) {
	t.Helper()
	store := snmp.NewStore()
	snmp.PopulateFromMIB(store, mib.NewStandard(), "mgmt.mib")
	agent := snmp.NewAgent(store, &snmp.Config{
		Communities:    map[string]*snmp.CommunityConfig{},
		AdminCommunity: "nmsl-admin",
	})
	addr, err := agent.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { agent.Close() })
	return agent, addr.String()
}

// TestReconcileOnceHealsDrift: -reconcile -once detects the drifted
// agent, heals it, exits 0, and a second sweep finds the fleet in sync.
func TestReconcileOnceHealsDrift(t *testing.T) {
	agent, addr := startDriftedAgent(t)
	fleet := filepath.Join(t.TempDir(), "fleet.txt")
	if err := os.WriteFile(fleet, []byte(instID+" "+addr+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	spec := specFile(t)

	var out, errb strings.Builder
	code := run(context.Background(), []string{
		"-reconcile", "-once", "-targets", fleet, spec}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "[drift]") || !strings.Contains(out.String(), "[healed]") {
		t.Fatalf("events missing from output: %q", out.String())
	}
	if agent.ConfigSnapshot().Communities["public"] == nil {
		t.Fatal("reconciler did not install the desired config")
	}

	out.Reset()
	errb.Reset()
	code = run(context.Background(), []string{
		"-reconcile", "-once", "-targets", fleet, spec}, &out, &errb)
	if code != 0 {
		t.Fatalf("second sweep exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "1 in-sync") {
		t.Fatalf("second sweep output: %q", out.String())
	}
}

// TestReconcileLoopStopsOnCancel: the -reconcile loop exits 0 when its
// context is canceled (the SIGINT/SIGTERM path).
func TestReconcileLoopStopsOnCancel(t *testing.T) {
	_, addr := startDriftedAgent(t)
	fleet := filepath.Join(t.TempDir(), "fleet.txt")
	if err := os.WriteFile(fleet, []byte(instID+" "+addr+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(300 * time.Millisecond)
		cancel()
	}()
	var out, errb strings.Builder
	code := run(ctx, []string{
		"-reconcile", "-targets", fleet, "-interval", "50ms", "-seed", "1",
		specFile(t)}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "reconciler stopped") {
		t.Fatalf("output: %q", out.String())
	}
}

// TestReconcileUsageErrors: -reconcile without a fleet is a usage error,
// and an unreachable fleet member fails a -once sweep.
func TestReconcileUsageErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run(context.Background(), []string{"-reconcile", specFile(t)}, &out, &errb); code != 2 {
		t.Errorf("-reconcile without -targets: exit %d", code)
	}
	fleet := filepath.Join(t.TempDir(), "fleet.txt")
	if err := os.WriteFile(fleet, []byte(instID+" 127.0.0.1:1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run(context.Background(), []string{
		"-reconcile", "-once", "-targets", fleet, "-timeout", "50ms", specFile(t)}, &out, &errb); code != 1 {
		t.Errorf("unreachable fleet member: exit %d", code)
	}
}

package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nmsl"
	"nmsl/internal/mib"
	"nmsl/internal/paperspec"
	"nmsl/internal/snmp"
)

const instID = "snmpdReadOnly@romano.cs.wisc.edu#0"

func specFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.nmsl")
	if err := os.WriteFile(path, []byte(paperspec.Combined), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// startAgent runs an agent configured per the specification (adherent)
// or with a weakened config (divergent).
func startAgent(t *testing.T, adherent bool) string {
	t.Helper()
	c := nmsl.NewCompiler()
	if err := c.CompileSource("paper", paperspec.Combined); err != nil {
		t.Fatal(err)
	}
	spec, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	cfg := spec.AgentConfigs()[instID]
	if !adherent {
		for _, cc := range cfg.Communities {
			cc.MinInterval = 0
			cc.Access = mib.AccessAny
		}
	}
	store := snmp.NewStore()
	snmp.PopulateFromMIB(store, spec.AST().MIB, "mgmt.mib")
	agent := snmp.NewAgent(store, cfg)
	addr, err := agent.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { agent.Close() })
	return addr.String()
}

func TestAdherentAgentExitsZero(t *testing.T) {
	addr := startAgent(t, true)
	var out, errb strings.Builder
	code := run(context.Background(), []string{"-instance", instID, "-addr", addr, specFile(t)}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "adheres") {
		t.Fatalf("output: %q", out.String())
	}
}

func TestDivergentAgentExitsOne(t *testing.T) {
	addr := startAgent(t, false)
	var out, errb strings.Builder
	code := run(context.Background(), []string{"-instance", instID, "-addr", addr, "-writes", specFile(t)}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "rate-leak") {
		t.Fatalf("output: %q", out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run(context.Background(), nil, &out, &errb); code != 2 {
		t.Errorf("no args: exit %d", code)
	}
	if code := run(context.Background(), []string{"-instance", "x", "-addr", "y", "/missing.nmsl"}, &out, &errb); code != 2 {
		t.Errorf("missing file: exit %d", code)
	}
	if code := run(context.Background(), []string{"-instance", "ghost", "-addr", "127.0.0.1:1", specFile(t)}, &out, &errb); code != 2 {
		t.Errorf("unknown instance: exit %d", code)
	}
}

package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nmsl/internal/obs"
)

func TestNegativeRetriesRejected(t *testing.T) {
	var out, errb strings.Builder
	code := run(context.Background(), []string{"-instance", instID, "-addr", "127.0.0.1:1",
		"-retries", "-1", specFile(t)}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "-retries must be >= 0") {
		t.Fatalf("stderr: %q", errb.String())
	}
}

func TestNegativeBackoffRejected(t *testing.T) {
	var out, errb strings.Builder
	code := run(context.Background(), []string{"-instance", instID, "-addr", "127.0.0.1:1",
		"-backoff", "-5ms", specFile(t)}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "-backoff must be >= 0") {
		t.Fatalf("stderr: %q", errb.String())
	}
}

func TestObservabilityFlags(t *testing.T) {
	addr := startAgent(t, true)
	trace := filepath.Join(t.TempDir(), "spans.jsonl")
	var out, errb strings.Builder
	code := run(context.Background(), []string{"-instance", instID, "-addr", addr,
		"-metrics-addr", "127.0.0.1:0", "-trace-out", trace, specFile(t)}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "metrics: serving http://") {
		t.Fatalf("no endpoint announcement on stderr: %q", errb.String())
	}

	// The audit's probes went through the instrumented SNMP client and
	// agent, so both spans and metrics carry their traffic.
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"name":"snmp.roundtrip"`) {
		t.Fatalf("trace file has no snmp.roundtrip span: %q", data)
	}

	cli, err := obs.StartCLI("127.0.0.1:0", "", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", cli.Server.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	for _, name := range []string{"nmsl_snmp_client_requests_total", "nmsl_snmp_agent_requests_total"} {
		if !strings.Contains(string(body), name) {
			t.Errorf("/metrics missing %s:\n%s", name, body)
		}
	}
}

func TestBadMetricsAddr(t *testing.T) {
	var out, errb strings.Builder
	code := run(context.Background(), []string{"-instance", instID, "-addr", "127.0.0.1:1",
		"-metrics-addr", "definitely not an address", specFile(t)}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "metrics-addr") {
		t.Fatalf("stderr: %q", errb.String())
	}
}

// nmslaudit verifies that running network managers adhere to their NMSL
// specification (the paper's second verification method: "verifying that
// these specifications are actually being adhered to in the network").
//
// It compiles the specifications, derives the prescribed behaviour of the
// named agent instance, probes the live agent over the management
// protocol, and reports every observable divergence — leaks (the agent
// answers what the specification forbids) and over-restrictions (it
// refuses what the specification permits).
//
// Usage:
//
//	nmslaudit -instance id -addr host:port [-writes]
//	          [-metrics-addr a] [-trace-out f] spec.nmsl ...
//
// -metrics-addr serves the observability endpoint (/metrics,
// /debug/vars, /debug/pprof) while the audit runs; -trace-out appends
// tracing spans to a file as JSON lines.
//
// Exit status: 0 adherent, 1 divergent, 2 usage or compile error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"nmsl"
	"nmsl/internal/audit"
	"nmsl/internal/obs"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nmslaudit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	instance := fs.String("instance", "", "agent instance ID to audit")
	addr := fs.String("addr", "", "agent address host:port")
	writes := fs.Bool("writes", false, "probe write enforcement (writes back the value just read)")
	timeout := fs.Duration("timeout", 300*time.Millisecond, "per-probe response timeout")
	retries := fs.Int("retries", 0, "retransmits per probe (0 keeps the client default)")
	backoff := fs.Duration("backoff", 0, "base delay between probe retransmits (0 keeps the client default)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	traceOut := fs.String("trace-out", "", "append tracing spans to this file as JSON lines")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 || *instance == "" || *addr == "" {
		fmt.Fprintln(stderr, "nmslaudit: need -instance, -addr and specification files")
		return 2
	}
	// A negative retry or backoff is always a typo; rejecting it beats
	// the old behavior of silently reinterpreting it.
	if *retries < 0 {
		fmt.Fprintf(stderr, "nmslaudit: -retries must be >= 0 (got %d)\n", *retries)
		return 2
	}
	if *backoff < 0 {
		fmt.Fprintf(stderr, "nmslaudit: -backoff must be >= 0 (got %v)\n", *backoff)
		return 2
	}
	ocli, err := obs.StartCLI(*metricsAddr, *traceOut, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "nmslaudit: %v\n", err)
		return 2
	}
	defer ocli.Close()

	c := nmsl.NewCompiler()
	for _, path := range fs.Args() {
		if err := c.CompileFile(path); err != nil {
			fmt.Fprintf(stderr, "nmslaudit: %v\n", err)
			return 2
		}
	}
	spec, err := c.Finish()
	if err != nil {
		fmt.Fprintf(stderr, "nmslaudit: %v\n", err)
		return 2
	}

	rep, err := audit.AgentContext(ctx, spec.Model(), *instance, *addr, audit.Options{
		Timeout:     *timeout,
		Retries:     *retries,
		Backoff:     *backoff,
		ProbeWrites: *writes,
	})
	if err != nil {
		fmt.Fprintf(stderr, "nmslaudit: %v\n", err)
		return 2
	}
	fmt.Fprint(stdout, rep.String())
	if !rep.Adheres() {
		return 1
	}
	return 0
}

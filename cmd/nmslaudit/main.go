// nmslaudit verifies that running network managers adhere to their NMSL
// specification (the paper's second verification method: "verifying that
// these specifications are actually being adhered to in the network").
//
// It compiles the specifications, derives the prescribed behaviour of the
// named agent instance, probes the live agent over the management
// protocol, and reports every observable divergence — leaks (the agent
// answers what the specification forbids) and over-restrictions (it
// refuses what the specification permits).
//
// Usage:
//
//	nmslaudit -instance id -addr host:port [-writes]
//	          [-metrics-addr a] [-trace-out f] spec.nmsl ...
//	nmslaudit -reconcile -targets fleet.txt [-interval 30s] [-once]
//	          [-breaker-threshold 3] [-breaker-cooldown 2m] spec.nmsl ...
//
// With -reconcile, nmslaudit becomes a drift reconciler: a jittered
// periodic loop that fetches every fleet agent's live configuration,
// compares its digest against the model's, re-installs on drift, and
// quarantines targets that keep failing or flapping behind a per-target
// circuit breaker (open after -breaker-threshold consecutive strikes; a
// half-open probe after -breaker-cooldown decides readmission). -once
// runs a single sweep and exits. SIGINT or SIGTERM stops the loop
// cleanly after the sweep in progress.
//
// -metrics-addr serves the observability endpoint (/metrics,
// /debug/vars, /debug/pprof) while the audit runs; -trace-out appends
// tracing spans to a file as JSON lines.
//
// Exit status: 0 adherent, 1 divergent, 2 usage or compile error. In
// -reconcile -once mode a sweep with check or heal failures exits 1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nmsl"
	"nmsl/internal/audit"
	"nmsl/internal/configgen"
	"nmsl/internal/obs"
	"nmsl/internal/reconcile"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nmslaudit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	instance := fs.String("instance", "", "agent instance ID to audit")
	addr := fs.String("addr", "", "agent address host:port")
	writes := fs.Bool("writes", false, "probe write enforcement (writes back the value just read)")
	timeout := fs.Duration("timeout", 300*time.Millisecond, "per-probe response timeout")
	retries := fs.Int("retries", 0, "retransmits per probe (0 keeps the client default)")
	backoff := fs.Duration("backoff", 0, "base delay between probe retransmits (0 keeps the client default)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	traceOut := fs.String("trace-out", "", "append tracing spans to this file as JSON lines")
	reconcileMode := fs.Bool("reconcile", false, "run the drift reconciler over the fleet in -targets instead of a one-shot audit")
	targetsFile := fs.String("targets", "", "reconciler fleet file: one \"instanceID addr [admin]\" per line")
	adminDefault := fs.String("admin", "nmsl-admin", "default admin community for fleet targets that omit one")
	interval := fs.Duration("interval", 30*time.Second, "reconciler: pause between sweeps")
	jitter := fs.Float64("reconcile-jitter", 0.1, "reconciler: fractional jitter on the sweep interval")
	once := fs.Bool("once", false, "reconciler: run a single sweep and exit")
	breakerThreshold := fs.Int("breaker-threshold", 3, "reconciler: consecutive failures before a target is quarantined")
	breakerCooldown := fs.Duration("breaker-cooldown", 2*time.Minute, "reconciler: quarantine time before a half-open probe")
	seed := fs.Int64("seed", 0, "reconciler: seed for the sweep jitter (0 = random)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *reconcileMode {
		if fs.NArg() == 0 || *targetsFile == "" {
			fmt.Fprintln(stderr, "nmslaudit: -reconcile needs -targets and specification files")
			return 2
		}
	} else if fs.NArg() == 0 || *instance == "" || *addr == "" {
		fmt.Fprintln(stderr, "nmslaudit: need -instance, -addr and specification files")
		return 2
	}
	// A negative retry or backoff is always a typo; rejecting it beats
	// the old behavior of silently reinterpreting it.
	if *retries < 0 {
		fmt.Fprintf(stderr, "nmslaudit: -retries must be >= 0 (got %d)\n", *retries)
		return 2
	}
	if *backoff < 0 {
		fmt.Fprintf(stderr, "nmslaudit: -backoff must be >= 0 (got %v)\n", *backoff)
		return 2
	}
	ocli, err := obs.StartCLI(*metricsAddr, *traceOut, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "nmslaudit: %v\n", err)
		return 2
	}
	defer ocli.Close()

	c := nmsl.NewCompiler()
	for _, path := range fs.Args() {
		if err := c.CompileFile(path); err != nil {
			fmt.Fprintf(stderr, "nmslaudit: %v\n", err)
			return 2
		}
	}
	spec, err := c.Finish()
	if err != nil {
		fmt.Fprintf(stderr, "nmslaudit: %v\n", err)
		return 2
	}

	if *reconcileMode {
		f, err := os.Open(*targetsFile)
		if err != nil {
			fmt.Fprintf(stderr, "nmslaudit: %v\n", err)
			return 2
		}
		targets, err := configgen.ParseTargets(f, *adminDefault)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "nmslaudit: %v\n", err)
			return 2
		}
		ropts := []reconcile.Option{
			reconcile.WithInterval(*interval),
			reconcile.WithJitter(*jitter),
			reconcile.WithRetries(*retries),
			reconcile.WithAttemptTimeout(*timeout),
			reconcile.WithBreaker(*breakerThreshold, *breakerCooldown),
			reconcile.WithOnEvent(func(e reconcile.Event) {
				fmt.Fprintf(stdout, "nmslaudit: %s\n", e)
			}),
		}
		if *seed != 0 {
			ropts = append(ropts, reconcile.WithSeed(*seed))
		}
		r, err := reconcile.New(spec.Model(), targets, ropts...)
		if err != nil {
			fmt.Fprintf(stderr, "nmslaudit: %v\n", err)
			return 2
		}
		if *once {
			sw, err := r.RunOnce(ctx)
			if sw != nil {
				fmt.Fprintf(stdout, "nmslaudit: %s\n", sw)
			}
			if err != nil {
				fmt.Fprintf(stderr, "nmslaudit: %v\n", err)
				return 1
			}
			if sw.CheckFailures > 0 || sw.HealFailures > 0 {
				return 1
			}
			return 0
		}
		err = r.Run(ctx, func(sw *reconcile.Sweep) {
			fmt.Fprintf(stdout, "nmslaudit: %s\n", sw)
		})
		// The loop only ends on a signal or parent cancellation: that is a
		// clean shutdown, not a failure.
		if err != nil && !errors.Is(err, context.Canceled) {
			fmt.Fprintf(stderr, "nmslaudit: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout, "nmslaudit: reconciler stopped")
		return 0
	}

	rep, err := audit.AgentContext(ctx, spec.Model(), *instance, *addr, audit.Options{
		Timeout:     *timeout,
		Retries:     *retries,
		Backoff:     *backoff,
		ProbeWrites: *writes,
	})
	if err != nil {
		fmt.Fprintf(stderr, "nmslaudit: %v\n", err)
		return 2
	}
	fmt.Fprint(stdout, rep.String())
	if !rep.Adheres() {
		return 1
	}
	return 0
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSingleRow(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-domains", "5", "-systems", "2"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("output:\n%s", out.String())
	}
	if !strings.Contains(lines[0], "domains") || !strings.Contains(lines[1], "10") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestInjectedViolationsCounted(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-domains", "20", "-systems", "1", "-rate", "1.0"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	// all pollers bad -> 20 violations in the row
	if !strings.Contains(out.String(), "  20 ") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestStarFlag(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-domains", "3", "-systems", "2", "-star"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
}

func TestUnknownTable(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-table", "bogus"}, &out, &errb); code != 2 {
		t.Errorf("exit %d", code)
	}
}

func TestScenarioChaosRunWithReport(t *testing.T) {
	report := filepath.Join(t.TempDir(), "report.json")
	var out, errb strings.Builder
	code := run([]string{
		"-scenario", "campus", "-agents", "50", "-chaos",
		"-seed", "3", "-stages", "0.2", "-report", report,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s\n%s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "wave 0:") || !strings.Contains(out.String(), "converged=true") {
		t.Fatalf("output missing wave stream or convergence line:\n%s", out.String())
	}
	blob, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	if m["converged"] != true || m["chaos"] != true {
		t.Fatalf("report contents: %s", blob)
	}
}

// -mux hosts half the fleet in memory and half on UDP loopback and
// must converge both halves through the one shared client socket.
func TestMuxMixedFleet(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-mux", "-domains", "10", "-systems", "2", "-seed", "5"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s\n%s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "10 mem://, 10 udp") ||
		!strings.Contains(out.String(), "20 installed, 0 failed, 0 drifted") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestScenarioUnknownName(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-scenario", "bogus", "-agents", "5"}, &out, &errb); code != 1 {
		t.Errorf("exit %d (stderr %q)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "unknown scenario") {
		t.Errorf("stderr: %q", errb.String())
	}
}

func TestScenarioBadStages(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-scenario", "iot", "-agents", "5", "-stages", "x"}, &out, &errb); code != 2 {
		t.Errorf("exit %d", code)
	}
}

// The single -seed flag threads to the fleet: same seed, identical
// report shape (agents, waves) across runs.
func TestScenarioSeedThreading(t *testing.T) {
	get := func() map[string]any {
		var out, errb strings.Builder
		code := run([]string{"-scenario", "iot", "-agents", "20", "-seed", "9", "-stages", "", "-report", "-"}, &out, &errb)
		if code != 0 {
			t.Fatalf("exit %d: %s", code, errb.String())
		}
		idx := strings.Index(out.String(), "{")
		var m map[string]any
		if err := json.Unmarshal([]byte(out.String()[idx:]), &m); err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := get(), get()
	if a["agents"] != b["agents"] || a["waves"] != b["waves"] || a["seed"] != b["seed"] {
		t.Fatalf("same seed, different run shape: %v vs %v", a, b)
	}
}

package main

import (
	"strings"
	"testing"
)

func TestSingleRow(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-domains", "5", "-systems", "2"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("output:\n%s", out.String())
	}
	if !strings.Contains(lines[0], "domains") || !strings.Contains(lines[1], "10") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestInjectedViolationsCounted(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-domains", "20", "-systems", "1", "-rate", "1.0"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	// all pollers bad -> 20 violations in the row
	if !strings.Contains(out.String(), "  20 ") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestStarFlag(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-domains", "3", "-systems", "2", "-star"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
}

func TestUnknownTable(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-table", "bogus"}, &out, &errb); code != 2 {
		t.Errorf("exit %d", code)
	}
}

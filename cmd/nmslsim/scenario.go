package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"nmsl/internal/configgen"
	"nmsl/internal/megafleet"
	"nmsl/internal/netsim"
	"nmsl/internal/reconcile"
)

// scenarioRun executes a mega-fleet scenario: build the topology, host
// the agents in memory, optionally arm the chaos matrix, roll out in
// waves and reconcile to convergence. Wave progress streams to stdout;
// -report emits the machine-readable RunReport as JSON ("-" = stdout).
func scenarioRun(name string, agents int, seed int64, chaos bool, stages, report, journal string, workers int, stdout, stderr io.Writer) int {
	fractions, err := parseStages(stages)
	if err != nil {
		fmt.Fprintf(stderr, "nmslsim: %v\n", err)
		return 2
	}
	rc := megafleet.RunConfig{
		Scenario: netsim.Scenario(name),
		Agents:   agents,
		Seed:     seed,
		Chaos:    chaos,
		Matrix:   megafleet.DefaultMatrix(),
		Stages:   fractions,
		Workers:  workers,
		Journal:  journal,
		OnWave: func(w configgen.WaveResult) {
			fmt.Fprintf(stdout, "wave %d: %d installed, %d failed, %d rolled-back, %d attempts in %s\n",
				w.Wave, w.Installed+w.Resumed, w.Failed+w.Skipped+w.Canceled, w.RolledBack,
				w.Attempts, w.Duration.Round(time.Millisecond))
		},
		OnSweep: func(s *reconcile.Sweep) {
			fmt.Fprintf(stdout, "%s\n", s)
		},
	}
	rep, err := megafleet.Run(context.Background(), rc)
	if err != nil {
		fmt.Fprintf(stderr, "nmslsim: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "scenario %s: %d agents, chaos=%v: %d/%d installed in %d waves (%.1f targets/s), converged=%v after %d sweeps in %s, %d duplicate loads, %d faults injected\n",
		rep.Scenario, rep.Agents, rep.Chaos, rep.RolloutInstalled, rep.Agents, rep.Waves,
		rep.TargetsPerSec, rep.Converged, rep.Sweeps,
		(time.Duration(rep.TimeToConverge) * time.Millisecond).Round(time.Millisecond),
		rep.DuplicateLoads, rep.FaultsInjected)
	if report != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "nmslsim: %v\n", err)
			return 1
		}
		blob = append(blob, '\n')
		if report == "-" {
			if _, err := stdout.Write(blob); err != nil {
				fmt.Fprintf(stderr, "nmslsim: %v\n", err)
				return 1
			}
		} else if err := os.WriteFile(report, blob, 0o644); err != nil {
			fmt.Fprintf(stderr, "nmslsim: %v\n", err)
			return 1
		}
	}
	if !rep.Converged {
		fmt.Fprintf(stderr, "nmslsim: fleet did not converge (%d agents still drifted)\n", rep.Unconverged)
		return 1
	}
	return 0
}

// parseStages turns "0.1,0.5" into canary-wave fractions; empty means
// an unstaged rollout.
func parseStages(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad stage %q in -stages", part)
		}
		out = append(out, f)
	}
	return out, nil
}

// nmslsim drives the scale experiments (EXPERIMENTS.md T-SCALE-1/2/3).
//
// The paper sets goals of 10,000 administrative domains and up to a
// million hosts (section 1) with no measured evaluation; nmslsim
// generates synthetic internets of the requested size, runs the compiler
// and the consistency checker, and prints one result row per
// configuration:
//
//	nmslsim -table domains          # sweep domains  (T-SCALE-1)
//	nmslsim -table systems          # sweep elements (T-SCALE-2)
//	nmslsim -domains 1000 -systems 10 -rate 0.01
//	nmslsim -domains 10000 -workers 8    # parallel sharded check
//
// With -scenario it instead hosts a mega-fleet of in-memory agents and
// drives a staged rollout plus reconciliation against it (E-MEGA),
// optionally under the chaos matrix:
//
//	nmslsim -scenario campus -agents 10000 -chaos -report report.json
//	nmslsim -scenario iot -agents 1000 -chaos -stages 0.01,0.1,0.5 -seed 7
//
// With -mux it hosts a mixed fleet — half mem:// agents, half real UDP
// agents on loopback — and rolls out to both through one shared client
// socket (snmp.ClientMux):
//
//	nmslsim -mux -domains 50 -systems 2
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"nmsl/internal/consistency"
	"nmsl/internal/netsim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nmslsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	domains := fs.Int("domains", 100, "number of administrative domains")
	systems := fs.Int("systems", 2, "network elements per domain")
	depth := fs.Int("depth", 1, "domain nesting depth")
	rate := fs.Float64("rate", 0, "injected inconsistency rate")
	star := fs.Bool("star", false, "use late-bound (*) query targets")
	recursive := fs.Bool("recursive", false, "agents also query their peer agents (server-to-server)")
	seed := fs.Int64("seed", 1, "generation seed")
	workers := fs.Int("workers", 0, "check worker pool size (0 = one per CPU)")
	table := fs.String("table", "", "run a sweep: domains | systems")
	scenario := fs.String("scenario", "", "mega-fleet scenario: "+strings.Join(netsim.Scenarios(), " | "))
	agents := fs.Int("agents", 1000, "mega-fleet agent count (with -scenario)")
	chaos := fs.Bool("chaos", false, "arm the chaos matrix (with -scenario)")
	stages := fs.String("stages", "0.1,0.5", "canary-wave fractions, comma-separated (with -scenario; empty = unstaged)")
	report := fs.String("report", "", "write the JSON run report here; - for stdout (with -scenario)")
	journal := fs.String("journal", "", "rollout write-ahead journal path (with -scenario)")
	mux := fs.Bool("mux", false, "mixed-transport fleet: half mem:// agents, half UDP loopback agents, one rollout over a shared ClientMux socket")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *mux {
		return muxRun(*domains, *systems, *seed, *workers, stdout, stderr)
	}

	if *scenario != "" {
		return scenarioRun(*scenario, *agents, *seed, *chaos, *stages, *report, *journal, *workers, stdout, stderr)
	}

	switch *table {
	case "":
		p := netsim.Params{
			Domains: *domains, SystemsPerDomain: *systems,
			NestingDepth: *depth, InconsistencyRate: *rate,
			StarTargets: *star, RecursiveChains: *recursive, Seed: *seed,
		}
		row, err := measure(p, *workers)
		if err != nil {
			fmt.Fprintf(stderr, "nmslsim: %v\n", err)
			return 1
		}
		printHeader(stdout)
		printRow(stdout, row)
	case "domains":
		printHeader(stdout)
		for _, d := range []int{10, 100, 1000, 10000} {
			row, err := measure(netsim.Params{
				Domains: d, SystemsPerDomain: *systems,
				NestingDepth: *depth, InconsistencyRate: *rate, Seed: *seed,
			}, *workers)
			if err != nil {
				fmt.Fprintf(stderr, "nmslsim: %v\n", err)
				return 1
			}
			printRow(stdout, row)
		}
	case "systems":
		printHeader(stdout)
		for _, s := range []int{1, 10, 100, 1000} {
			row, err := measure(netsim.Params{
				Domains: *domains, SystemsPerDomain: s,
				NestingDepth: *depth, InconsistencyRate: *rate, Seed: *seed,
			}, *workers)
			if err != nil {
				fmt.Fprintf(stderr, "nmslsim: %v\n", err)
				return 1
			}
			printRow(stdout, row)
		}
	default:
		fmt.Fprintf(stderr, "nmslsim: unknown table %q\n", *table)
		return 2
	}
	return 0
}

type row struct {
	domains, systems    int
	specLines           int
	instances, refs     int
	compile, build, chk time.Duration
	violations          int
	heapMB              float64
}

func measure(p netsim.Params, workers int) (row, error) {
	src := netsim.Source(p)
	lines := 0
	for _, ch := range src {
		if ch == '\n' {
			lines++
		}
	}
	t0 := time.Now()
	spec, err := netsim.Build(p)
	if err != nil {
		return row{}, err
	}
	compile := time.Since(t0)

	t1 := time.Now()
	m := consistency.BuildModel(spec)
	build := time.Since(t1)

	t2 := time.Now()
	rep, err := consistency.CheckContext(context.Background(), m, consistency.Options{Workers: workers})
	if err != nil {
		return row{}, err
	}
	chk := time.Since(t2)

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return row{
		domains:    p.Domains,
		systems:    p.Domains * p.SystemsPerDomain,
		specLines:  lines,
		instances:  len(m.Instances),
		refs:       len(m.Refs),
		compile:    compile,
		build:      build,
		chk:        chk,
		violations: len(rep.Violations),
		heapMB:     float64(ms.HeapAlloc) / (1 << 20),
	}, nil
}

func printHeader(w io.Writer) {
	fmt.Fprintf(w, "%8s %8s %9s %9s %8s %12s %12s %12s %6s %8s\n",
		"domains", "systems", "lines", "instances", "refs", "compile", "model", "check", "viol", "heapMB")
}

func printRow(w io.Writer, r row) {
	fmt.Fprintf(w, "%8d %8d %9d %9d %8d %12s %12s %12s %6d %8.1f\n",
		r.domains, r.systems, r.specLines, r.instances, r.refs,
		r.compile.Round(time.Microsecond), r.build.Round(time.Microsecond),
		r.chk.Round(time.Microsecond), r.violations, r.heapMB)
}

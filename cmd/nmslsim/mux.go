package main

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"nmsl/internal/configgen"
	"nmsl/internal/netsim"
	"nmsl/internal/obs"
	"nmsl/internal/snmp"
)

// muxRun exercises the mixed-transport fleet path end to end: half the
// generated internet's agents are hosted on the in-memory network, the
// other half serve real UDP sockets on loopback, and one rollout
// converges both halves through a single shared client socket
// (snmp.ClientMux.DialAny routes mem:// in-process and everything else
// over the mux). This is the deployment shape §1 implies — most of the
// fleet simulated at scale, a rack of real agents mixed in — and the
// mode CI runs to keep the mux path honest.
func muxRun(domains, systems int, seed int64, workers int, stdout, stderr io.Writer) int {
	m, err := netsim.Model(netsim.Params{
		Domains: domains, SystemsPerDomain: systems, NestingDepth: 1, Seed: seed,
	})
	if err != nil {
		fmt.Fprintf(stderr, "nmslsim: %v\n", err)
		return 1
	}
	const admin = "mux-admin"

	mem, err := snmp.NewMemNet(fmt.Sprintf("mux-%d", seed), 1)
	if err != nil {
		fmt.Fprintf(stderr, "nmslsim: %v\n", err)
		return 1
	}
	defer mem.Close()

	configs := configgen.Generate(m)
	ids := make([]string, 0, len(configs))
	for id := range configs {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	var targets []configgen.Target
	agents := make(map[string]*snmp.Agent, len(ids))
	memN, udpN := 0, 0
	for i, id := range ids {
		store := snmp.NewStore()
		snmp.PopulateFromMIB(store, m.Spec.MIB, "mgmt.mib")
		agent := snmp.NewAgent(store, &snmp.Config{
			Communities:    map[string]*snmp.CommunityConfig{},
			AdminCommunity: admin,
		})
		var addr string
		if i%2 == 0 {
			if _, err := mem.AddHost(id, agent); err != nil {
				fmt.Fprintf(stderr, "nmslsim: %v\n", err)
				return 1
			}
			addr = mem.Addr(id)
			memN++
		} else {
			ua, err := agent.ListenAndServe("127.0.0.1:0")
			if err != nil {
				fmt.Fprintf(stderr, "nmslsim: %v\n", err)
				return 1
			}
			defer agent.Close()
			addr = ua.String()
			udpN++
		}
		agents[id] = agent
		targets = append(targets, configgen.Target{InstanceID: id, Addr: addr, AdminCommunity: admin})
	}

	mux, err := snmp.NewClientMux()
	if err != nil {
		fmt.Fprintf(stderr, "nmslsim: %v\n", err)
		return 1
	}
	defer mux.Close()

	t0 := time.Now()
	rep, err := configgen.DistributeContext(context.Background(), m, targets,
		configgen.WithWorkers(workers),
		configgen.WithDialer(mux.DialAny),
		configgen.WithMetrics(obs.Disabled),
	)
	if err != nil {
		fmt.Fprintf(stderr, "nmslsim: %v\n", err)
		return 1
	}

	drifted := 0
	for _, tgt := range targets {
		want := configgen.DesiredConfig(configs[tgt.InstanceID], tgt).Digest()
		if agents[tgt.InstanceID].ConfigSnapshot().Digest() != want {
			drifted++
		}
	}
	fmt.Fprintf(stdout, "mux rollout: %d targets (%d mem://, %d udp via one shared socket): %d installed, %d failed, %d drifted in %s\n",
		len(targets), memN, udpN, rep.Installed, rep.Failed+rep.Skipped+rep.Canceled, drifted,
		time.Since(t0).Round(time.Millisecond))
	if !rep.OK() || drifted > 0 {
		fmt.Fprintf(stderr, "nmslsim: mixed fleet did not converge (%s)\n", rep.Summary())
		return 1
	}
	return 0
}

// nmsld is the resident NMSL network-manager daemon: a multi-tenant
// check/rollout service with a versioned JSON API.
//
// Where nmslcheck compiles, checks and exits, nmsld keeps each
// tenant's compiled specification and warm result cache resident, so
// the incremental machinery (delta checks over fingerprinted verdict
// caches) pays off across requests instead of being rebuilt per
// invocation.
//
// Usage:
//
//	nmsld [-addr a] [-state dir] [-max-tenants n] [-rate rps] [-burst n]
//	      [-admission n] [-queue n] [-workers n] [-cache-max n]
//	      [-flush d] [-trace-out f]
//
// The API is versioned under /v1 (see api/v1 for the frozen wire
// types):
//
//	GET    /v1/tenants                  list tenants
//	GET    /v1/tenants/{id}             tenant summary
//	PUT    /v1/tenants/{id}/spec        install/replace a specification
//	DELETE /v1/tenants/{id}             evict a tenant
//	POST   /v1/tenants/{id}/check       full consistency check
//	POST   /v1/tenants/{id}/delta-check incremental re-check
//	POST   /v1/tenants/{id}/generate    derive per-agent configurations
//	POST   /v1/tenants/{id}/rollout     install configs at a fleet
//	POST   /v1/tenants/{id}/verify-change  dry-run a proposed revision
//	                                    against change contracts
//
// plus /healthz, /metrics (Prometheus text), /debug/vars and
// /debug/pprof on the same listener.
//
// -state dir makes tenant state (accepted spec sources and result
// caches) durable with fsync'd atomic replacement; on restart tenants
// recompile and their caches reload, so the first post-restart check
// is already warm. SIGINT/SIGTERM drain in-flight requests and flush
// dirty caches before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nmsl/internal/obs"
	"nmsl/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run starts the daemon; ready (when non-nil) receives the bound
// address once listening — tests use it with -addr 127.0.0.1:0.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("nmsld", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:9380", "listen address")
	state := fs.String("state", "", "persist tenant state under this directory")
	maxTenants := fs.Int("max-tenants", 0, "cap on resident tenants (0 = unlimited)")
	rate := fs.Float64("rate", 0, "per-tenant sustained requests/sec (0 = unlimited)")
	burst := fs.Int("burst", 8, "per-tenant burst size")
	admission := fs.Int("admission", 0, "concurrently executing checks (0 = default 8)")
	queue := fs.Int("queue", 64, "admission wait-queue length")
	workers := fs.Int("workers", 1, "default worker pool per check")
	cacheMax := fs.Int("cache-max", 0, "per-tenant result-cache entry cap (0 = unbounded)")
	flush := fs.Duration("flush", 2*time.Second, "background cache-flush interval (0 = on demand only)")
	traceOut := fs.String("trace-out", "", "append tracing spans to this file as JSON lines")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ocli, err := obs.StartCLI("", *traceOut, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "nmsld: %v\n", err)
		return 2
	}
	if ocli != nil {
		defer ocli.Close()
	}

	svc, err := service.New(
		service.WithStateDir(*state),
		service.WithMaxTenants(*maxTenants),
		service.WithRateLimit(*rate, *burst),
		service.WithAdmission(*admission, *queue),
		service.WithCheckWorkers(*workers),
		service.WithCacheMaxEntries(*cacheMax),
		service.WithFlushInterval(*flush),
	)
	if err != nil {
		fmt.Fprintf(stderr, "nmsld: %v\n", err)
		return 2
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "nmsld: %v\n", err)
		return 2
	}
	srv := &http.Server{Handler: svc.Handler()}
	fmt.Fprintf(stdout, "nmsld: listening on http://%s (%d tenants resident)\n",
		ln.Addr(), len(svc.TenantIDs()))
	if ready != nil {
		ready <- ln.Addr().String()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	code := 0
	select {
	case <-ctx.Done():
		fmt.Fprintln(stdout, "nmsld: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			fmt.Fprintf(stderr, "nmsld: shutdown: %v\n", err)
			code = 1
		}
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(stderr, "nmsld: %v\n", err)
			code = 1
		}
	}
	if err := svc.Close(); err != nil {
		fmt.Fprintf(stderr, "nmsld: flushing state: %v\n", err)
		code = 1
	}
	return code
}

package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"

	apiv1 "nmsl/api/v1"
	"nmsl/internal/netsim"
)

// startDaemon runs the daemon on a loopback port and returns its base
// URL plus a channel yielding the exit code after shutdown.
func startDaemon(t *testing.T, extra ...string) (string, chan int, *strings.Builder) {
	t.Helper()
	ready := make(chan string, 1)
	done := make(chan int, 1)
	var out, errb strings.Builder
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	go func() { done <- run(args, &out, &errb, ready) }()
	select {
	case addr := <-ready:
		return "http://" + addr, done, &errb
	case code := <-done:
		t.Fatalf("daemon exited %d before listening: %s", code, errb.String())
		return "", nil, nil
	}
}

func putSpec(t *testing.T, base, id string, p netsim.Params) {
	t.Helper()
	req := apiv1.SpecRequest{Sources: []apiv1.Source{{Name: "net.nmsl", Text: netsim.Source(p)}}}
	blob, _ := json.Marshal(req)
	preq, err := http.NewRequest(http.MethodPut, base+"/v1/tenants/"+id+"/spec", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	preq.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(preq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT spec = %d", resp.StatusCode)
	}
}

// TestDaemonServesAndShutsDown boots the daemon, exercises a check
// round trip over real TCP, and shuts it down with SIGTERM as an
// operator (or the kill-and-restart test below) would.
func TestDaemonServesAndShutsDown(t *testing.T) {
	base, done, errb := startDaemon(t)
	p := netsim.Params{Domains: 2, SystemsPerDomain: 2, Seed: 11}
	putSpec(t, base, "acme", p)

	resp, err := http.Post(base+"/v1/tenants/acme/check", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var chk apiv1.CheckResponse
	if err := json.NewDecoder(resp.Body).Decode(&chk); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !chk.Report.Consistent {
		t.Fatalf("check = %d, %+v", resp.StatusCode, chk.Report)
	}

	if resp, err := http.Get(base + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit %d: %s", code, errb.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
	}
}

// TestDaemonRestartWarm is the end-to-end kill-and-restart proof at
// the binary level: run with -state, check, SIGTERM (flushes), start a
// second daemon over the same directory and assert its first check
// hits the reloaded cache.
func TestDaemonRestartWarm(t *testing.T) {
	state := t.TempDir()
	p := netsim.Params{Domains: 3, SystemsPerDomain: 3, InconsistencyRate: 0.25, Seed: 21}
	want := netsim.ExpectedViolations(p)

	base, done, errb := startDaemon(t, "-state", state)
	putSpec(t, base, "acme", p)
	resp, err := http.Post(base+"/v1/tenants/acme/check", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var cold apiv1.CheckResponse
	if err := json.NewDecoder(resp.Body).Decode(&cold); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(cold.Report.Violations) != want {
		t.Fatalf("cold check: %d violations, want %d", len(cold.Report.Violations), want)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := <-done; code != 0 {
		t.Fatalf("first daemon exit %d: %s", code, errb.String())
	}

	base2, done2, errb2 := startDaemon(t, "-state", state)
	resp2, err := http.Post(base2+"/v1/tenants/acme/check", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var warm apiv1.CheckResponse
	if err := json.NewDecoder(resp2.Body).Decode(&warm); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if len(warm.Report.Violations) != want {
		t.Fatalf("post-restart check: %d violations, want %d", len(warm.Report.Violations), want)
	}
	if warm.Cache == nil || warm.Cache.Hits == 0 {
		t.Fatalf("post-restart check was cold: %+v", warm.Cache)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := <-done2; code != 0 {
		t.Fatalf("second daemon exit %d: %s", code, errb2.String())
	}
}

func TestDaemonBadFlags(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-no-such-flag"}, &out, &errb, nil); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if code := run([]string{"-addr", "256.0.0.1:bad"}, &out, &errb, nil); code != 2 {
		t.Fatalf("bad addr: exit %d, want 2", code)
	}
}
